package gateway_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/units"
)

// startGateway assembles a full facility, fronts it with a gateway
// and serves it over a real HTTP listener. Every conformance test
// goes through this stack — the same one cmd/lsdfd runs.
func startGateway(t testing.TB, fopts facility.Options, cfg gateway.Config) (*facility.Facility, *gateway.Server, *httptest.Server) {
	t.Helper()
	if fopts.DFSNodes == 0 {
		fopts.DFSNodes = 4
	}
	if fopts.DFSBlockSize == 0 {
		fopts.DFSBlockSize = 256 * units.KiB
	}
	fac, err := facility.New(fopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fac.Close)
	srv, err := gateway.ForFacility(fac, cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return fac, srv, hs
}

func newClient(t testing.TB, hs *httptest.Server, token string, opts ...client.Options) *client.Client {
	t.Helper()
	c, err := client.New(hs.URL, token, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestConformanceEndToEnd drives the whole facility through the real
// client against a served lsdfd: batched ingest, stat, list, full
// and range reads (byte-identical to direct in-process reads through
// the same layer), tagging, metadata queries, job submission and
// result retrieval.
func TestConformanceEndToEnd(t *testing.T) {
	fac, _, hs := startGateway(t,
		facility.Options{Sites: []string{"gridka", "desy"}, ReadCacheMemory: 8 * units.MiB},
		gateway.Config{Tenants: []gateway.Tenant{{
			Name: "bio", Token: "bio-secret",
			Prefixes: []string{"/sites/bio", "/hdfs"},
			RPS:      10000, MaxInFlight: 64,
		}}},
	)
	c := newClient(t, hs, "bio-secret")
	ctx := context.Background()

	// Batched ingest: the DAQ path. One request, every object stored
	// and registered.
	var objs []gateway.IngestObject
	payload := map[string][]byte{}
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("/sites/bio/run1/img-%03d.raw", i)
		data := bytes.Repeat([]byte{byte(i)}, 512+i*37)
		payload[p] = data
		objs = append(objs, gateway.IngestObject{
			Path: p, Project: "zebrafish", Data: data,
			Basic: map[string]string{"camera": "spim-1"},
			Tags:  []string{"raw"},
		})
	}
	ing, err := c.Ingest(ctx, objs)
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if ing.Registered != len(objs) {
		t.Fatalf("registered %d/%d: %+v", ing.Registered, len(objs), ing.Results)
	}
	for _, r := range ing.Results {
		if r.Error != "" || r.DatasetID == "" {
			t.Fatalf("ingest result: %+v", r)
		}
		want := sha256.Sum256(payload[r.Path])
		if r.SHA256 != hex.EncodeToString(want[:]) {
			t.Fatalf("ingest checksum mismatch for %s", r.Path)
		}
	}

	// Stat joins namespace and metadata.
	info, err := c.Stat(ctx, "/sites/bio/run1/img-007.raw")
	if err != nil {
		t.Fatal(err)
	}
	if info.Project != "zebrafish" || len(info.Tags) == 0 || info.DatasetID == "" {
		t.Fatalf("stat not joined with metadata: %+v", info)
	}
	if int(info.Size) != len(payload["/sites/bio/run1/img-007.raw"]) {
		t.Fatalf("stat size = %d", info.Size)
	}

	// List sees every ingested object.
	entries, err := c.List(ctx, "/sites/bio/run1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(objs) {
		t.Fatalf("list: %d entries, want %d", len(entries), len(objs))
	}

	// Reads over the wire are byte-identical to direct reads through
	// the same federated layer (cache, federation and all).
	for p, want := range payload {
		got, err := c.ReadObject(ctx, p)
		if err != nil {
			t.Fatalf("read %s: %v", p, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("gateway read of %s differs from ingested bytes", p)
		}
		rc, err := fac.Layer.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := io.ReadAll(rc)
		rc.Close()
		if err != nil || !bytes.Equal(got, direct) {
			t.Fatalf("gateway read of %s differs from direct layer read", p)
		}
	}

	// Range reads: offset+length, suffix, and to-end all slice the
	// same bytes the full read returned.
	rp := "/sites/bio/run1/img-013.raw"
	full := payload[rp]
	for _, rr := range []struct{ off, n int64 }{{0, 10}, {100, 57}, {int64(len(full)) - 9, -1}} {
		rc, err := c.GetRange(ctx, rp, rr.off, rr.n)
		if err != nil {
			t.Fatalf("range %+v: %v", rr, err)
		}
		got, err := io.ReadAll(rc)
		rc.Close()
		if err != nil {
			t.Fatal(err)
		}
		end := int64(len(full))
		if rr.n >= 0 && rr.off+rr.n < end {
			end = rr.off + rr.n
		}
		if !bytes.Equal(got, full[rr.off:end]) {
			t.Fatalf("range %+v: got %d bytes, mismatch", rr, len(got))
		}
	}

	// PUT streams a larger object and registers it in one request.
	big := bytes.Repeat([]byte("large-streamed-object "), 64*1024) // ~1.3 MiB
	pr, err := c.PutObject(ctx, "/sites/bio/run1/big.raw", big, "zebrafish", "raw", "stitched")
	if err != nil {
		t.Fatal(err)
	}
	wantSum := sha256.Sum256(big)
	if pr.SHA256 != hex.EncodeToString(wantSum[:]) || pr.DatasetID == "" {
		t.Fatalf("put result: %+v", pr)
	}
	back, err := c.ReadObject(ctx, "/sites/bio/run1/big.raw")
	if err != nil || !bytes.Equal(back, big) {
		t.Fatalf("big object round trip failed: err=%v len=%d", err, len(back))
	}

	// Metadata plane: tag, query, untag.
	ds, err := c.Tag(ctx, rp, "analyze")
	if err != nil {
		t.Fatal(err)
	}
	if !ds.HasTag("analyze") {
		t.Fatalf("tag not applied: %+v", ds)
	}
	found, err := c.Find(ctx, client.FindQuery{Project: "zebrafish", Tags: []string{"analyze"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Path != rp {
		t.Fatalf("find by tag: %+v", found)
	}
	if _, err := c.Untag(ctx, rp, "analyze"); err != nil {
		t.Fatal(err)
	}

	// Analysis plane: stage inputs on the cluster, run wordcount,
	// read the reduced output back through the gateway.
	if _, err := c.PutObject(ctx, "/hdfs/books/a.txt", []byte("to be or not to be\n"), ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutObject(ctx, "/hdfs/books/b.txt", []byte("be the change\n"), ""); err != nil {
		t.Fatal(err)
	}
	js, err := c.SubmitJob(ctx, gateway.JobRequest{
		Job: "wordcount", Inputs: []string{"/books/a.txt", "/books/b.txt"}, OutputDir: "/wc-out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if js.State != gateway.JobRunning || js.ID == "" {
		t.Fatalf("submit: %+v", js)
	}
	done, err := c.WaitJob(ctx, js.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != gateway.JobDone {
		t.Fatalf("job: %+v", done)
	}
	counts := map[string]string{}
	for _, f := range done.OutputFiles {
		out, err := c.ReadObject(ctx, "/hdfs"+f)
		if err != nil {
			t.Fatalf("read job output %s: %v", f, err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
			if k, v, ok := strings.Cut(line, "\t"); ok {
				counts[k] = v
			}
		}
	}
	if counts["be"] != "3" || counts["to"] != "2" || counts["change"] != "1" {
		t.Fatalf("wordcount output: %v", counts)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 {
		t.Fatalf("jobs list: %v %+v", err, jobs)
	}

	// Delete removes object and dataset together.
	rm, err := c.Remove(ctx, rp)
	if err != nil || !rm.Removed || rm.DatasetID == "" {
		t.Fatalf("remove: %v %+v", err, rm)
	}
	if _, err := c.Stat(ctx, rp); !client.IsNotFound(err) {
		t.Fatalf("stat after remove: %v", err)
	}
	if _, err := c.Dataset(ctx, rp); !client.IsNotFound(err) {
		t.Fatalf("dataset after remove: %v", err)
	}

	// Metrics reflect the traffic.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Tenant != "bio" || m.Stats.Requests == 0 || m.Stats.BytesOut == 0 || m.Stats.BytesIn == 0 {
		t.Fatalf("metrics: %+v", m)
	}
}

// TestErrorContract pins the wire contract: every failure — auth,
// authz, missing objects, unknown routes, bad methods, bad JSON —
// is a JSON envelope with matching status.
func TestErrorContract(t *testing.T) {
	_, _, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{{Name: "bio", Token: "tkn", Prefixes: []string{"/ddn/bio"}}}})
	ctx := context.Background()
	noRetry := client.Options{MaxRetries: -1}

	c := newClient(t, hs, "tkn", noRetry)
	bad := newClient(t, hs, "wrong-token", noRetry)

	checks := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"bad token", errOf(bad.Health(ctx)), 0, ""}, // healthz is pre-auth: must succeed
		{"unauthenticated stat", errOnly(bad.Stat(ctx, "/ddn/bio/x")), 401, "unauthenticated"},
		{"denied path", errOnly(c.Stat(ctx, "/ddn/other/x")), 403, "denied"},
		{"missing object", errOnly(c.Stat(ctx, "/ddn/bio/nope")), 404, "not_found"},
		{"missing dataset", errOnly(c.Dataset(ctx, "/ddn/bio/nope")), 404, "not_found"},
		{"unknown job template", errOnly(c.SubmitJob(ctx, gateway.JobRequest{
			Job: "no-such", Inputs: []string{"/x"}, OutputDir: "/y"})), 404, "unknown_job"},
	}
	for _, tc := range checks {
		if tc.status == 0 {
			if tc.err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, tc.err)
			}
			continue
		}
		var ae *client.APIError
		if !asAPIErr(tc.err, &ae) {
			t.Errorf("%s: error %v is not an APIError", tc.name, tc.err)
			continue
		}
		if ae.Status != tc.status || ae.Code != tc.code {
			t.Errorf("%s: got %d %q, want %d %q", tc.name, ae.Status, ae.Code, tc.status, tc.code)
		}
	}

	// Raw HTTP checks for responses the client never generates:
	// unknown routes, bad methods and garbage JSON must still be
	// enveloped.
	raw := func(method, path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, hs.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Authorization", "Bearer tkn")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	for _, tc := range []struct {
		method, path, body string
		status             int
	}{
		{"GET", "/v1/no-such-route", "", 404},
		{"POST", "/v1/objects/ddn/bio/x", "", 405},
		{"POST", "/v1/ingest", "{not json", 400},
		{"GET", "/totally/elsewhere", "", 404},
	} {
		resp := raw(tc.method, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.status)
		}
		assertEnvelope(t, resp)
	}

	// Unsatisfiable range: 416 envelope. Malformed range: full body.
	if _, err := c.PutObject(ctx, "/ddn/bio/r.raw", []byte("0123456789"), ""); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("GET", hs.URL+"/v1/objects/ddn/bio/r.raw", nil)
	req.Header.Set("Authorization", "Bearer tkn")
	req.Header.Set("Range", "bytes=100-200")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("unsatisfiable range: %d", resp.StatusCode)
	}
	assertEnvelope(t, resp)
	req.Header.Set("Range", "bytes=garbage")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "0123456789" {
		t.Errorf("malformed range: %d %q (want full body per RFC 7233)", resp.StatusCode, body)
	}
}

// TestRateLimitHeaders pins the overload wire shape: a dry token
// bucket answers 429 with an honest Retry-After, and the client's
// retry loop turns that into a delayed success.
func TestRateLimitHeaders(t *testing.T) {
	_, _, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{{
			Name: "slow", Token: "s", Prefixes: []string{"/ddn"}, RPS: 5, Burst: 2, MaxInFlight: 8,
		}}})

	req := func() *http.Response {
		r, _ := http.NewRequest("GET", hs.URL+"/v1/metrics", nil)
		r.Header.Set("Authorization", "Bearer s")
		resp, err := http.DefaultClient.Do(r)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	var throttled *http.Response
	for i := 0; i < 10; i++ {
		if r := req(); r.StatusCode == http.StatusTooManyRequests {
			throttled = r
			break
		}
	}
	if throttled == nil {
		t.Fatal("burst of 10 at burst=2 never hit 429")
	}
	if throttled.Header.Get("Retry-After") == "" || throttled.Header.Get("X-LSDF-Retry-After-Ms") == "" {
		t.Fatalf("429 without Retry-After hints: %+v", throttled.Header)
	}

	// The client retries through it: a burst of sequential calls all
	// eventually succeed, slower but never failing.
	c := newClient(t, hs, "s", client.Options{MaxRetries: 8, Backoff: 5 * time.Millisecond})
	for i := 0; i < 8; i++ {
		if _, err := c.Metrics(context.Background()); err != nil {
			t.Fatalf("retrying client saw hard failure: %v", err)
		}
	}
}

func errOnly[T any](_ T, err error) error { return err }
func errOf(err error) error               { return err }

func asAPIErr(err error, ae **client.APIError) bool {
	return err != nil && errors.As(err, ae)
}

func assertEnvelope(t *testing.T, resp *http.Response) {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var env gateway.ErrorEnvelope
	data, _ := io.ReadAll(resp.Body)
	if err := json.Unmarshal(data, &env); err != nil {
		t.Errorf("error body is not a JSON envelope: %q", data)
		return
	}
	if env.Error.Status != resp.StatusCode || env.Error.Code == "" {
		t.Errorf("envelope %+v does not match status %d", env.Error, resp.StatusCode)
	}
}

// Package client is the Go client for the lsdfd gateway — the thing
// lsdfctl, the DataBrowser and the load experiments talk through, so
// the facility's wire protocol always has a real consumer.
//
// The client speaks the gateway's overload protocol: 429 (rate
// limit) and 503 (admission/drain) responses are retried with
// exponential backoff, honoring the server's Retry-After hint, so a
// briefly saturated tenant sees latency, not errors. Transient 5xx
// and transport failures are retried only for idempotent reads.
// Object bodies stream in both directions.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/gateway"
	"repro/internal/metadata"
	"repro/internal/obs"
)

// APIError is a gateway error envelope surfaced as a Go error.
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("lsdfd: %s (%d %s)", e.Message, e.Status, e.Code)
}

// IsNotFound reports whether err is a 404 from the gateway.
func IsNotFound(err error) bool { return hasStatus(err, http.StatusNotFound) }

// IsDenied reports whether err is a 401/403 from the gateway.
func IsDenied(err error) bool {
	return hasStatus(err, http.StatusForbidden) || hasStatus(err, http.StatusUnauthorized)
}

// IsOverload reports whether err is a 429/503 that outlived the
// client's retry budget.
func IsOverload(err error) bool {
	return hasStatus(err, http.StatusTooManyRequests) || hasStatus(err, http.StatusServiceUnavailable)
}

func hasStatus(err error, status int) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Status == status
}

// Options tune a Client.
type Options struct {
	// HTTPClient overrides the transport (shared pooled transports
	// for fleet tests).
	HTTPClient *http.Client
	// MaxRetries bounds retry attempts after the first (default 4).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt with
	// jitter; the server's Retry-After hint overrides it upward
	// (default 25ms).
	Backoff time.Duration
	// User optionally binds requests to a user name the token must
	// match (X-LSDF-User).
	User string
}

// Client talks to one lsdfd.
type Client struct {
	base  *url.URL
	token string
	user  string
	hc    *http.Client

	maxRetries int
	backoff    time.Duration
}

// New creates a client for the gateway at base (e.g.
// "http://127.0.0.1:7420") authenticating with the community's
// bearer token.
func New(base, token string, opts ...Options) (*Client, error) {
	u, err := url.Parse(base)
	if err != nil {
		return nil, fmt.Errorf("client: base URL: %w", err)
	}
	var o Options
	if len(opts) > 0 {
		o = opts[0]
	}
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 4
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	return &Client{
		base:       u,
		token:      token,
		user:       o.User,
		hc:         o.HTTPClient,
		maxRetries: o.MaxRetries,
		backoff:    o.Backoff,
	}, nil
}

// Host returns the gateway's host:port.
func (c *Client) Host() string { return c.base.Host }

// ---- object data plane ------------------------------------------------

// Put streams body into the object at path. The write is not retried
// unless body is replayable (an io.Seeker); PutObject is the
// retryable byte-slice form. Non-empty project registers the object
// as a dataset in the same request.
func (c *Client) Put(ctx context.Context, path string, body io.Reader, project string, tags ...string) (gateway.PutResult, error) {
	q := url.Values{}
	if project != "" {
		q.Set("project", project)
	}
	if len(tags) > 0 {
		q.Set("tags", strings.Join(tags, ","))
	}
	mkBody := func() (io.Reader, bool) { return body, false }
	if s, ok := body.(io.Seeker); ok {
		mkBody = func() (io.Reader, bool) {
			_, err := s.Seek(0, io.SeekStart)
			return body, err == nil
		}
	}
	var res gateway.PutResult
	err := c.doJSON(ctx, http.MethodPut, "/v1/objects"+path, q, mkBody, "application/octet-stream", &res)
	return res, err
}

// PutObject stores data at path with full overload-retry semantics.
func (c *Client) PutObject(ctx context.Context, path string, data []byte, project string, tags ...string) (gateway.PutResult, error) {
	return c.Put(ctx, path, bytes.NewReader(data), project, tags...)
}

// Get opens a streaming read of the object at path. The caller owns
// the returned body.
func (c *Client) Get(ctx context.Context, path string) (io.ReadCloser, error) {
	return c.get(ctx, path, "")
}

// GetRange reads length bytes from offset (length < 0 = through the
// end of the object).
func (c *Client) GetRange(ctx context.Context, path string, offset, length int64) (io.ReadCloser, error) {
	spec := fmt.Sprintf("bytes=%d-", offset)
	if length >= 0 {
		spec = fmt.Sprintf("bytes=%d-%d", offset, offset+length-1)
	}
	return c.get(ctx, path, spec)
}

// ReadObject reads the whole object into memory.
func (c *Client) ReadObject(ctx context.Context, path string) ([]byte, error) {
	rc, err := c.Get(ctx, path)
	if err != nil {
		return nil, err
	}
	defer rc.Close()
	return io.ReadAll(rc)
}

func (c *Client) get(ctx context.Context, path, rangeSpec string) (io.ReadCloser, error) {
	hdr := http.Header{}
	if rangeSpec != "" {
		hdr.Set("Range", rangeSpec)
	}
	resp, err := c.do(ctx, http.MethodGet, "/v1/objects"+path, nil, nil, "", hdr)
	if err != nil {
		return nil, err
	}
	return resp.Body, nil
}

// Remove deletes the object (and its dataset record) at path.
func (c *Client) Remove(ctx context.Context, path string) (gateway.RemoveResult, error) {
	var res gateway.RemoveResult
	err := c.doJSON(ctx, http.MethodDelete, "/v1/objects"+path, nil, nil, "", &res)
	return res, err
}

// Stat describes the object at path, joined with its dataset record.
func (c *Client) Stat(ctx context.Context, path string) (gateway.ObjectInfo, error) {
	var res gateway.ObjectInfo
	err := c.doJSON(ctx, http.MethodGet, "/v1/stat"+path, nil, nil, "", &res)
	return res, err
}

// List enumerates the namespace under prefix.
func (c *Client) List(ctx context.Context, prefix string) ([]gateway.ObjectInfo, error) {
	var res gateway.ListResult
	err := c.doJSON(ctx, http.MethodGet, "/v1/list", url.Values{"prefix": {prefix}}, nil, "", &res)
	return res.Objects, err
}

// ---- metadata plane ---------------------------------------------------

// FindQuery filters datasets server-side.
type FindQuery struct {
	Project string
	Tags    []string
	Prefix  string
	Limit   int
}

// Find queries the metadata DB.
func (c *Client) Find(ctx context.Context, q FindQuery) ([]metadata.Dataset, error) {
	v := url.Values{}
	if q.Project != "" {
		v.Set("project", q.Project)
	}
	if len(q.Tags) > 0 {
		v.Set("tag", strings.Join(q.Tags, ","))
	}
	if q.Prefix != "" {
		v.Set("prefix", q.Prefix)
	}
	if q.Limit > 0 {
		v.Set("limit", strconv.Itoa(q.Limit))
	}
	var res gateway.DatasetsResult
	err := c.doJSON(ctx, http.MethodGet, "/v1/datasets", v, nil, "", &res)
	return res.Datasets, err
}

// Dataset fetches the dataset registered at path.
func (c *Client) Dataset(ctx context.Context, path string) (metadata.Dataset, error) {
	var res metadata.Dataset
	err := c.doJSON(ctx, http.MethodGet, "/v1/dataset", url.Values{"path": {path}}, nil, "", &res)
	return res, err
}

// Tag adds a tag to the dataset at path.
func (c *Client) Tag(ctx context.Context, path, tag string) (metadata.Dataset, error) {
	return c.tag(ctx, "/v1/datasets/tag", path, tag)
}

// Untag removes a tag from the dataset at path.
func (c *Client) Untag(ctx context.Context, path, tag string) (metadata.Dataset, error) {
	return c.tag(ctx, "/v1/datasets/untag", path, tag)
}

func (c *Client) tag(ctx context.Context, endpoint, path, tag string) (metadata.Dataset, error) {
	var res metadata.Dataset
	err := c.doJSON(ctx, http.MethodPost, endpoint, nil, jsonBody(gateway.TagRequest{Path: path, Tag: tag}), "application/json", &res)
	return res, err
}

// Ingest stores and registers a batch of small objects in one
// request — the wire form of the DAQ bulk path. A nil error means
// the batch was processed; per-object outcomes are in the result.
func (c *Client) Ingest(ctx context.Context, objects []gateway.IngestObject) (gateway.IngestResult, error) {
	var res gateway.IngestResult
	err := c.doJSON(ctx, http.MethodPost, "/v1/ingest", nil, jsonBody(gateway.IngestRequest{Objects: objects}), "application/json", &res)
	return res, err
}

// ---- jobs -------------------------------------------------------------

// SubmitJob starts a named analysis job; poll Job (or WaitJob) for
// completion.
func (c *Client) SubmitJob(ctx context.Context, req gateway.JobRequest) (gateway.JobStatus, error) {
	var res gateway.JobStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/jobs", nil, jsonBody(req), "application/json", &res)
	return res, err
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (gateway.JobStatus, error) {
	var res gateway.JobStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, "", &res)
	return res, err
}

// Jobs lists the tenant's jobs.
func (c *Client) Jobs(ctx context.Context) ([]gateway.JobStatus, error) {
	var res gateway.JobsResult
	err := c.doJSON(ctx, http.MethodGet, "/v1/jobs", nil, nil, "", &res)
	return res.Jobs, err
}

// WaitJob polls until the job leaves the running state.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (gateway.JobStatus, error) {
	if poll <= 0 {
		poll = 10 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != gateway.JobRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Metrics fetches the calling tenant's traffic counters.
func (c *Client) Metrics(ctx context.Context) (gateway.MetricsResult, error) {
	var res gateway.MetricsResult
	err := c.doJSON(ctx, http.MethodGet, "/v1/metrics", nil, nil, "", &res)
	return res, err
}

// MetricsText fetches the facility-wide Prometheus exposition from
// GET /metrics — every subsystem's counters in one scrape. This is
// what `lsdfctl metrics` prints.
func (c *Client) MetricsText(ctx context.Context) (string, error) {
	resp, err := c.do(ctx, http.MethodGet, "/metrics", nil, nil, "", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Traces fetches the n most recent request traces from the gateway's
// debug ring (n <= 0 uses the server default).
func (c *Client) Traces(ctx context.Context, n int) ([]obs.TraceView, error) {
	var q url.Values
	if n > 0 {
		q = url.Values{"n": {strconv.Itoa(n)}}
	}
	var res []obs.TraceView
	err := c.doJSON(ctx, http.MethodGet, "/v1/debug/traces", q, nil, "", &res)
	return res, err
}

// Trace fetches one trace by ID — the value a mutating call echoed
// back in its X-LSDF-Trace response header.
func (c *Client) Trace(ctx context.Context, id string) (obs.TraceView, error) {
	var res obs.TraceView
	err := c.doJSON(ctx, http.MethodGet, "/v1/debug/traces", url.Values{"id": {id}}, nil, "", &res)
	return res, err
}

// Health probes the server; an error means unreachable or draining.
func (c *Client) Health(ctx context.Context) error {
	return c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, nil, "", &struct {
		Status string `json:"status"`
	}{})
}

// ---- request core -----------------------------------------------------

// jsonBody marshals once and replays across retries.
func jsonBody(v any) func() (io.Reader, bool) {
	data, err := json.Marshal(v)
	return func() (io.Reader, bool) {
		if err != nil {
			return nil, false
		}
		return bytes.NewReader(data), true
	}
}

// doJSON runs a request and decodes the JSON response into out.
func (c *Client) doJSON(ctx context.Context, method, path string, q url.Values, mkBody func() (io.Reader, bool), contentType string, out any) error {
	resp, err := c.do(ctx, method, path, q, mkBody, contentType, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if out == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s: %w", method, path, err)
	}
	return nil
}

// do issues the request with the retry policy and returns a response
// with status < 400; errors carry the decoded envelope as *APIError.
func (c *Client) do(ctx context.Context, method, path string, q url.Values, mkBody func() (io.Reader, bool), contentType string, hdr http.Header) (*http.Response, error) {
	u := *c.base
	u.Path = strings.TrimSuffix(u.Path, "/") + path
	if q != nil {
		u.RawQuery = q.Encode()
	}
	idempotent := method == http.MethodGet || method == http.MethodHead

	var lastErr error
	for attempt := 0; ; attempt++ {
		var body io.Reader
		replayable := true
		if mkBody != nil {
			body, replayable = mkBody()
		}
		req, err := http.NewRequestWithContext(ctx, method, u.String(), body)
		if err != nil {
			return nil, err
		}
		req.Header.Set("Authorization", "Bearer "+c.token)
		if c.user != "" {
			req.Header.Set("X-LSDF-User", c.user)
		}
		// A caller-minted trace (lsdfctl --trace) rides the header so
		// the gateway adopts its ID instead of minting one.
		if id := obs.TraceID(ctx); id != "" {
			req.Header.Set(obs.TraceHeader, id)
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, vs := range hdr {
			req.Header[k] = vs
		}

		resp, err := c.hc.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			// Transport failure: the server may or may not have seen
			// the request — replay only reads.
			lastErr = err
			if !idempotent {
				return nil, err
			}
		case resp.StatusCode < 400:
			return resp, nil
		default:
			apiErr := decodeEnvelope(resp)
			lastErr = apiErr
			switch {
			case resp.StatusCode == http.StatusTooManyRequests,
				resp.StatusCode == http.StatusServiceUnavailable:
				// Overload rejections happen before the handler ran:
				// safe to retry any method with a replayable body.
				if !replayable {
					return nil, apiErr
				}
				wait = retryHint(resp)
			case resp.StatusCode >= 500 && idempotent:
				// Transient server error on a read.
			default:
				return nil, apiErr
			}
		}
		if attempt >= c.maxRetries {
			return nil, lastErr
		}
		backoff := c.backoff << attempt
		backoff += time.Duration(rand.Int63n(int64(backoff)/2 + 1)) // full-ish jitter
		if wait > backoff {
			backoff = wait
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
	}
}

func decodeEnvelope(resp *http.Response) *APIError {
	defer resp.Body.Close()
	var env gateway.ErrorEnvelope
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64*1024))
	if json.Unmarshal(data, &env) == nil && env.Error.Status != 0 {
		return &APIError{Status: env.Error.Status, Code: env.Error.Code, Message: env.Error.Message}
	}
	return &APIError{Status: resp.StatusCode, Code: "http_error", Message: strings.TrimSpace(string(data))}
}

func retryHint(resp *http.Response) time.Duration {
	if ms := resp.Header.Get("X-LSDF-Retry-After-Ms"); ms != "" {
		if n, err := strconv.ParseInt(ms, 10, 64); err == nil && n >= 0 {
			return time.Duration(n) * time.Millisecond
		}
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if n, err := strconv.ParseInt(s, 10, 64); err == nil && n >= 0 {
			return time.Duration(n) * time.Second
		}
	}
	return 0
}

package gateway

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"
)

// ServeDraining serves httpSrv (handler defaults to s) on ln until a
// listed signal arrives, then performs the lsdfd shutdown contract:
// the gateway drains first — new requests, including ones arriving
// on kept-alive connections, get 503 + Retry-After while in-flight
// streamed responses run to completion — and the HTTP server then
// shuts down its listeners and idle connections. Both phases share
// the drainTimeout budget; requests still running when it expires
// are abandoned to the process exit (the metadata WAL makes that
// safe for acknowledged work). It returns nil after a clean drain.
//
// cmd/lsdfd and the cross-process drain tests run this same path, so
// the signal wiring under test is the production wiring.
func (s *Server) ServeDraining(httpSrv *http.Server, ln net.Listener, drainTimeout time.Duration, signals ...os.Signal) error {
	if httpSrv.Handler == nil {
		httpSrv.Handler = s
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, signals...)
	defer signal.Stop(sigc)

	select {
	case err := <-errc:
		if errors.Is(err, http.ErrServerClosed) {
			return nil
		}
		return err
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		// Drain before Shutdown: the 503 gate must be up before the
		// listener closes, so load balancers retrying against other
		// instances see an orderly refusal, not a connection reset.
		drainErr := s.Drain(ctx)
		if err := httpSrv.Shutdown(ctx); err != nil {
			return err
		}
		return drainErr
	}
}

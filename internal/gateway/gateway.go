// Package gateway is the facility's network front door: the lsdfd
// service exposing the LSDF over HTTP/JSON with streamed object
// bodies. Everything the paper's communities do against the facility
// in-process — ADAL namespace reads and writes, metadata queries,
// batched DAQ ingest, MapReduce job submission — is reachable here
// over the wire, authenticated per community with bearer tokens on
// the adal Authenticator/ACL machinery.
//
// The front door is multi-tenant by construction. Every request is
// authenticated first, then charged against its tenant's token
// bucket (429 + Retry-After when the bucket is dry) and admitted
// against its tenant's in-flight bound (503 + Retry-After when the
// tenant already holds its share of handlers), so one community
// saturating its rate cannot starve another's admission slots.
// Object bodies stream: reads are paced by the client's socket
// (connection-level backpressure) with a per-chunk write deadline so
// a stalled client cannot hold a handler forever, and writes are
// read at the server's pace with the same per-chunk guard. Drain
// flips the server into shutdown mode: new requests get 503 while
// in-flight responses run to completion — the graceful half of the
// crash story whose other half is the metadata WAL (kill -9 of lsdfd
// loses no acknowledged dataset; see the drain tests).
//
// Every error, on every path — including unknown routes, bad
// methods, oversized bodies and handler panics — is a JSON envelope
// {"error":{"code","status","message"}}; the FuzzGatewayRequest
// contract. See DESIGN.md §11 for the architecture and the API
// reference.
package gateway

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/mrpc"
	"repro/internal/obs"
	"repro/internal/units"
)

// Config assembles a gateway over a running facility's parts.
type Config struct {
	// Layer is the facility namespace every object operation resolves
	// through (required).
	Layer *adal.Layer
	// Meta is the project metadata DB (required).
	Meta *metadata.Store
	// Tenants declares the communities and their limits. The gateway
	// builds a TokenAuth and ACL from them unless Auth/ACL are set.
	Tenants []Tenant
	// Auth overrides the tenant-built authenticator (pluggable
	// mechanisms, per the paper). Principals authenticated by a
	// custom Auth are metered under default tenant limits.
	Auth adal.Authenticator
	// ACL overrides the tenant-built ACL.
	ACL *adal.ACL
	// RunJob executes a MapReduce job (facility.RunJob); nil disables
	// the /v1/jobs endpoints with 501.
	RunJob func(mapreduce.Config) (*mapreduce.Result, error)
	// RunSpec, when set, takes precedence over RunJob+Jobs for job
	// submission: requests become wire-level job specs resolved and
	// executed by the facility (facility.SubmitNamedJob) — on its
	// distributed compute plane when one runs, with the submitting
	// tenant carried through to the master's fair-share scheduler.
	RunSpec func(spec mrpc.JobSpec, tenant string) (func() (*mapreduce.Result, error), error)
	// HasJob reports whether the RunSpec registry knows a template —
	// the pre-authorization 404 check (facility.HasJobTemplate).
	HasJob func(name string) bool
	// Jobs maps submittable job names to builders (default
	// BuiltinJobs).
	Jobs map[string]JobBuilder
	// MaxJSONBody caps JSON request bodies — ingest batches, job
	// submissions (default 8 MiB).
	MaxJSONBody units.Bytes
	// StreamChunkTimeout is the per-chunk socket deadline on streamed
	// bodies: a client that reads (or writes) nothing for this long
	// loses its connection (default 30s).
	StreamChunkTimeout time.Duration
	// DrainRetryAfter is the Retry-After hint on drain/admission 503s
	// (default 1s).
	DrainRetryAfter time.Duration
	// Obs is the metrics registry the gateway instruments into and
	// serves at GET /metrics. The facility passes its shared registry
	// here so one scrape covers every subsystem; nil builds a private
	// one (default).
	Obs *obs.Registry
	// Tracer is the trace ring requests are recorded into and served
	// from at GET /v1/debug/traces. nil builds a private ring of 256
	// traces.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.MaxJSONBody <= 0 {
		c.MaxJSONBody = 8 * units.MiB
	}
	if c.StreamChunkTimeout <= 0 {
		c.StreamChunkTimeout = 30 * time.Second
	}
	if c.DrainRetryAfter <= 0 {
		c.DrainRetryAfter = time.Second
	}
	if c.Jobs == nil {
		c.Jobs = BuiltinJobs()
	}
	return c
}

// Server is the lsdfd HTTP front door. It implements http.Handler;
// wrap it in an http.Server (or httptest) to serve.
type Server struct {
	cfg   Config
	authn adal.Authenticator
	acl   *adal.ACL
	al    *adal.AuthLayer
	mux   *http.ServeMux

	reg    *obs.Registry
	tracer *obs.Tracer
	met    gwMetrics
	promH  http.Handler

	draining atomic.Bool
	inFlight atomic.Int64

	mu      sync.Mutex
	tenants map[string]*tenantState

	jobsMu sync.Mutex
	jobSeq int64
	jobs   map[string]*jobState
}

// gwMetrics holds the gateway's obs series handles: per-tenant
// traffic counters and the per-operation latency histogram.
type gwMetrics struct {
	requests  *obs.CounterVec
	throttled *obs.CounterVec
	rejected  *obs.CounterVec
	bytesIn   *obs.CounterVec
	bytesOut  *obs.CounterVec
	reqDur    *obs.HistogramVec
}

func newGWMetrics(reg *obs.Registry) gwMetrics {
	return gwMetrics{
		requests:  reg.CounterVec("lsdf_gateway_requests_total", "Admitted requests per tenant.", "tenant"),
		throttled: reg.CounterVec("lsdf_gateway_throttled_total", "429s from the per-tenant rate limiter.", "tenant"),
		rejected:  reg.CounterVec("lsdf_gateway_rejected_total", "503s from per-tenant admission control.", "tenant"),
		bytesIn:   reg.CounterVec("lsdf_gateway_bytes_in_total", "Object/ingest payload bytes received.", "tenant"),
		bytesOut:  reg.CounterVec("lsdf_gateway_bytes_out_total", "Object payload bytes served.", "tenant"),
		reqDur:    reg.HistogramVec("lsdf_gateway_request_ns", "Handler latency per operation.", "op"),
	}
}

// New builds a gateway. Layer and Meta are required; Tenants (or a
// custom Auth/ACL pair) define who may call it.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Layer == nil || cfg.Meta == nil {
		return nil, fmt.Errorf("gateway: Layer and Meta are required")
	}
	authn := cfg.Auth
	acl := cfg.ACL
	if authn == nil {
		ta := adal.NewTokenAuth()
		for _, t := range cfg.Tenants {
			t = t.withDefaults()
			ta.Register(t.Token, adal.Principal{User: t.Name, Groups: []string{t.Name}})
		}
		authn = ta
	}
	if acl == nil {
		acl = adal.NewACL()
		for _, t := range cfg.Tenants {
			t = t.withDefaults()
			for _, p := range t.Prefixes {
				acl.Allow(t.Name, p, adal.PermRead|adal.PermWrite)
			}
			for _, p := range t.ReadPrefixes {
				acl.Allow(t.Name, p, adal.PermRead)
			}
		}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.New()
	}
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = obs.NewTracer(256)
	}
	s := &Server{
		cfg:     cfg,
		authn:   authn,
		acl:     acl,
		al:      adal.NewAuthLayer(cfg.Layer, authn, acl),
		reg:     reg,
		tracer:  tracer,
		met:     newGWMetrics(reg),
		promH:   reg.Handler(),
		tenants: make(map[string]*tenantState),
		jobs:    make(map[string]*jobState),
	}
	reg.GaugeFunc("lsdf_gateway_in_flight", "Requests currently admitted across all tenants.", s.inFlight.Load)
	reg.GaugeFunc("lsdf_gateway_draining", "1 while the front door is draining.", func() int64 {
		if s.draining.Load() {
			return 1
		}
		return 0
	})
	for _, t := range cfg.Tenants {
		t = t.withDefaults()
		s.tenants[t.Name] = newTenantState(t, s.met)
	}
	mux := http.NewServeMux()
	s.route(mux, "GET /v1/objects/{path...}", "get_object", s.getObject)
	s.route(mux, "PUT /v1/objects/{path...}", "put_object", s.putObject)
	s.route(mux, "DELETE /v1/objects/{path...}", "delete_object", s.deleteObject)
	s.route(mux, "GET /v1/stat/{path...}", "stat", s.statObject)
	s.route(mux, "GET /v1/list", "list", s.list)
	s.route(mux, "GET /v1/datasets", "find_datasets", s.findDatasets)
	s.route(mux, "GET /v1/dataset", "dataset", s.datasetByPath)
	s.route(mux, "POST /v1/datasets/tag", "tag", s.tagDataset)
	s.route(mux, "POST /v1/datasets/untag", "untag", s.tagDataset)
	s.route(mux, "POST /v1/ingest", "ingest", s.ingest)
	s.route(mux, "POST /v1/jobs", "submit_job", s.submitJob)
	s.route(mux, "GET /v1/jobs", "list_jobs", s.listJobs)
	s.route(mux, "GET /v1/jobs/{id}", "job_status", s.jobStatus)
	s.route(mux, "GET /v1/metrics", "metrics", s.metrics)
	s.mux = mux
	return s, nil
}

// route registers a handler wrapped with its operation's
// instrumentation: a gw.<op> span on traced requests and a sample in
// the per-op latency histogram. The histogram series is resolved once
// at registration, so the hot path pays one time.Since and one atomic
// observe.
func (s *Server) route(mux *http.ServeMux, pattern, op string, h http.HandlerFunc) {
	hist := s.met.reqDur.With(op)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sp := obs.StartSpan(r.Context(), "gw."+op)
		h(w, r)
		sp.End()
		hist.ObserveSince(start)
	})
}

// Obs returns the registry the gateway instruments into — the one
// GET /metrics serves. cmd/lsdfd mounts the same registry on its
// debug listener.
func (s *Server) Obs() *obs.Registry { return s.reg }

// TraceRing returns the trace ring behind GET /v1/debug/traces.
func (s *Server) TraceRing() *obs.Tracer { return s.tracer }

// Drain flips the server into shutdown: every new request — on new
// or kept-alive connections — is rejected with a 503 envelope and
// Retry-After, while requests already admitted run to completion.
// It returns once the last in-flight request finishes, or with the
// context's error if they outlast it.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	// Poll the in-flight count rather than Wait on a WaitGroup: new
	// requests keep arriving (to be 503ed) while we wait, and
	// WaitGroup forbids Add concurrent with Wait across a zero
	// counter. 1ms granularity is nothing on a shutdown path.
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		if s.inFlight.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots every tenant's traffic counters.
func (s *Server) Stats() map[string]TenantStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]TenantStats, len(s.tenants))
	for name, ts := range s.tenants {
		out[name] = ts.stats()
	}
	return out
}

// tenantFor returns the limit/metering state for an authenticated
// principal, creating a default-limits entry for principals minted
// by a custom Authenticator.
func (s *Server) tenantFor(p adal.Principal) *tenantState {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.tenants[p.User]
	if !ok {
		ts = newTenantState(Tenant{Name: p.User}, s.met)
		s.tenants[p.User] = ts
	}
	return ts
}

// authInfo rides the request context from the front-door middleware
// to the handlers.
type authInfo struct {
	creds     adal.Credentials
	principal adal.Principal
	tenant    *tenantState
}

type ctxKey struct{}

func reqAuth(r *http.Request) *authInfo {
	ai, _ := r.Context().Value(ctxKey{}).(*authInfo)
	return ai
}

// ServeHTTP is the front door: panic containment, drain gate,
// authentication, rate limit, admission — then the route table.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ew := &envelopeWriter{rw: w}
	defer func() {
		if p := recover(); p != nil {
			if p == http.ErrAbortHandler {
				panic(p)
			}
			if !ew.wroteHeader {
				writeErr(ew, http.StatusInternalServerError, "internal", fmt.Sprintf("panic: %v", p))
				return
			}
			// Mid-stream panic: the envelope ship has sailed; kill
			// the connection rather than serve a truncated body as
			// success.
			panic(http.ErrAbortHandler)
		}
	}()

	if r.URL.Path == "/v1/healthz" {
		if s.draining.Load() {
			writeErr(ew, http.StatusServiceUnavailable, "draining", "lsdfd is draining")
			return
		}
		writeJSON(ew, http.StatusOK, map[string]string{"status": "ok"})
		return
	}

	// Observability plane: Prometheus exposition and the trace ring
	// answer before authentication and before the drain gate —
	// scrapers and operators need them most while the front door is
	// refusing tenant traffic.
	if r.Method == http.MethodGet {
		switch r.URL.Path {
		case "/metrics":
			s.promH.ServeHTTP(ew, r)
			return
		case "/v1/debug/traces":
			s.debugTraces(ew, r)
			return
		}
	}

	// Requests are counted before the drain re-check, so Drain's wait
	// covers every request that slipped past the flag.
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	if s.draining.Load() {
		retryAfter(ew, s.cfg.DrainRetryAfter)
		writeErr(ew, http.StatusServiceUnavailable, "draining", "lsdfd is draining; retry against another instance")
		return
	}

	// Every admitted request gets a trace: adopted from the client's
	// X-LSDF-Trace header when it carries one (lsdfctl minting), minted
	// here otherwise. The ID is echoed back so clients can correlate,
	// and rides the context through the mount stack and over mrpc.
	td := s.tracer.StartTraceID(r.Header.Get(obs.TraceHeader), rootName(r))
	if td != nil {
		ew.Header().Set(obs.TraceHeader, td.ID)
		r = r.WithContext(obs.ContextWithTrace(r.Context(), td))
	}
	root := obs.StartSpanOn(td, "gw.request")
	defer func() {
		root.Annotate("status=%d", ew.status)
		root.End()
	}()

	creds := credentials(r)
	asp := obs.StartSpanOn(td, "gw.auth")
	principal, err := s.authn.Authenticate(creds)
	asp.End()
	if err != nil {
		writeErr(ew, http.StatusUnauthorized, "unauthenticated", err.Error())
		return
	}
	tenant := s.tenantFor(principal)
	if ok, retry := tenant.allow(time.Now()); !ok {
		tenant.throttled.Add(1)
		retryAfter(ew, retry)
		writeErr(ew, http.StatusTooManyRequests, "rate_limited",
			fmt.Sprintf("tenant %s over its request rate", tenant.name))
		return
	}
	if !tenant.admit() {
		tenant.rejected.Add(1)
		retryAfter(ew, s.cfg.DrainRetryAfter)
		writeErr(ew, http.StatusServiceUnavailable, "overloaded",
			fmt.Sprintf("tenant %s at its in-flight limit", tenant.name))
		return
	}
	defer tenant.release()
	tenant.requests.Add(1)

	ai := &authInfo{creds: creds, principal: principal, tenant: tenant}
	s.mux.ServeHTTP(ew, r.WithContext(context.WithValue(r.Context(), ctxKey{}, ai)))
}

// rootName labels a trace with its request line, truncated so a
// hostile URL cannot balloon the ring's memory.
func rootName(r *http.Request) string {
	name := r.Method + " " + r.URL.Path
	if len(name) > 128 {
		name = name[:128]
	}
	return name
}

// debugTraces serves the trace ring with the gateway's JSON-envelope
// error contract (the raw obs handler's 404 body is not an envelope).
// GET ?id=X returns one trace, GET ?n=K the K newest.
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	if id := r.URL.Query().Get("id"); id != "" {
		v, ok := s.tracer.Lookup(id)
		if !ok {
			writeErr(w, http.StatusNotFound, "not_found", "no trace "+id)
			return
		}
		writeJSON(w, http.StatusOK, v)
		return
	}
	n := 20
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			n = v
		}
	}
	writeJSON(w, http.StatusOK, s.tracer.Recent(n))
}

// credentials extracts the bearer token (and optional user binding)
// from the request.
func credentials(r *http.Request) adal.Credentials {
	c := adal.Credentials{User: r.Header.Get("X-LSDF-User")}
	if h := r.Header.Get("Authorization"); strings.HasPrefix(h, "Bearer ") {
		c.Token = strings.TrimPrefix(h, "Bearer ")
	}
	return c
}

// reqPath canonicalizes the {path...} wildcard into an absolute
// federated path; Clean folds any ../ escape attempts.
func reqPath(r *http.Request) string {
	return path.Clean("/" + r.PathValue("path"))
}

// ---- object endpoints -------------------------------------------------

func (s *Server) getObject(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	fp := reqPath(r)
	if _, err := s.al.Authorize(ai.creds, fp, adal.PermRead); err != nil {
		s.fail(w, err)
		return
	}
	info, err := s.cfg.Layer.Stat(fp)
	if err != nil {
		s.fail(w, err)
		return
	}
	rc, err := s.cfg.Layer.OpenCtx(r.Context(), fp)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer rc.Close()

	size := int64(info.Size)
	start, length := int64(0), size
	status := http.StatusOK
	if rng := r.Header.Get("Range"); rng != "" {
		st, ln, ok := parseRange(rng, size)
		if !ok {
			w.Header().Set("Content-Range", fmt.Sprintf("bytes */%d", size))
			writeErr(w, http.StatusRequestedRangeNotSatisfiable, "bad_range", "unsatisfiable range "+rng)
			return
		}
		if st >= 0 { // -1 = malformed, ignored per RFC 7233: serve the full body
			start, length = st, ln
			status = http.StatusPartialContent
			w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", start, start+length-1, size))
		}
	}
	// The reader comes out of the mount stack (read cache, federation,
	// tier) positioned at 0; a range read discards up to the offset —
	// cache hits make that a memory skip, not a WAN one.
	if start > 0 {
		if _, err := io.CopyN(io.Discard, rc, start); err != nil {
			s.fail(w, err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(length, 10))
	w.Header().Set("X-LSDF-Object-Size", strconv.FormatInt(size, 10))
	w.WriteHeader(status)
	n, _ := s.copyStream(w, io.LimitReader(rc, length), writeDeadline(w, s.cfg.StreamChunkTimeout))
	ai.tenant.bytesOut.Add(n)
}

func (s *Server) putObject(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	fp := reqPath(r)
	if _, err := s.al.Authorize(ai.creds, fp, adal.PermWrite); err != nil {
		s.fail(w, err)
		return
	}
	wc, err := s.cfg.Layer.Create(fp)
	if err != nil {
		s.fail(w, err)
		return
	}
	h := sha256.New()
	n, err := s.copyStream(io.MultiWriter(wc, h), r.Body, readDeadline(w, s.cfg.StreamChunkTimeout))
	ai.tenant.bytesIn.Add(n)
	if err == nil {
		err = wc.Close()
	} else {
		wc.Close()
	}
	if err != nil {
		_ = s.cfg.Layer.Remove(fp) // never leave a half-written object
		writeErr(w, http.StatusBadRequest, "write_failed", err.Error())
		return
	}
	res := PutResult{Path: fp, Size: units.Bytes(n), SHA256: hex.EncodeToString(h.Sum(nil))}

	// ?project= registers the stored object as a dataset in the same
	// request — tags atomically, and durably when the store journals
	// (the response is the registration's group-commit ack).
	if project := r.URL.Query().Get("project"); project != "" {
		spec := metadata.CreateSpec{
			Project:  project,
			Path:     fp,
			Size:     res.Size,
			Checksum: res.SHA256,
			Tags:     splitList(r.URL.Query().Get("tags")),
		}
		cr := s.cfg.Meta.CreateBatch([]metadata.CreateSpec{spec})[0]
		if cr.Err != nil {
			_ = s.cfg.Layer.Remove(fp)
			s.fail(w, cr.Err)
			return
		}
		res.DatasetID = cr.Dataset.ID
	}
	writeJSON(w, http.StatusCreated, res)
}

func (s *Server) deleteObject(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	fp := reqPath(r)
	if _, err := s.al.Authorize(ai.creds, fp, adal.PermWrite); err != nil {
		s.fail(w, err)
		return
	}
	res := RemoveResult{Path: fp}
	if ds, ok := s.cfg.Meta.ByPath(fp); ok {
		if err := s.cfg.Meta.Delete(ds.ID); err != nil {
			s.fail(w, err)
			return
		}
		res.DatasetID = ds.ID
	}
	if err := s.cfg.Layer.Remove(fp); err != nil {
		s.fail(w, err)
		return
	}
	res.Removed = true
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) statObject(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	fp := reqPath(r)
	if _, err := s.al.Authorize(ai.creds, fp, adal.PermRead); err != nil {
		s.fail(w, err)
		return
	}
	info, err := s.cfg.Layer.Stat(fp)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.objectInfo(info))
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	prefix := r.URL.Query().Get("prefix")
	if prefix == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "missing ?prefix=")
		return
	}
	if _, err := s.al.Authorize(ai.creds, prefix, adal.PermRead); err != nil {
		s.fail(w, err)
		return
	}
	infos, err := s.cfg.Layer.List(prefix)
	if err != nil {
		s.fail(w, err)
		return
	}
	// Defense in depth for shared parents: an entry the ACL does not
	// grant this principal never crosses the wire, so List can never
	// leak another community's namespace.
	out := make([]ObjectInfo, 0, len(infos))
	for _, info := range infos {
		if !s.acl.Check(ai.principal, info.Path, adal.PermRead) {
			continue
		}
		out = append(out, s.objectInfo(info))
	}
	writeJSON(w, http.StatusOK, ListResult{Objects: out})
}

func (s *Server) objectInfo(info adal.FileInfo) ObjectInfo {
	oi := ObjectInfo{Path: info.Path, Size: info.Size, ModTime: info.ModTime, IsDir: info.IsDir}
	if ds, ok := s.cfg.Meta.ByPath(info.Path); ok {
		oi.DatasetID = ds.ID
		oi.Project = ds.Project
		oi.Tags = ds.Tags
		oi.Checksum = ds.Checksum
	}
	return oi
}

// ---- metadata endpoints -----------------------------------------------

func (s *Server) findDatasets(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	q := r.URL.Query()
	limit := 0
	if ls := q.Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 0 {
			writeErr(w, http.StatusBadRequest, "bad_request", "bad ?limit=")
			return
		}
		limit = n
	}
	query := metadata.Query{
		Project:    q.Get("project"),
		Tags:       splitList(q.Get("tag")),
		PathPrefix: q.Get("prefix"),
	}
	matches := s.cfg.Meta.Find(query)
	out := make([]metadata.Dataset, 0, len(matches))
	for _, ds := range matches {
		if !s.acl.Check(ai.principal, ds.Path, adal.PermRead) {
			continue
		}
		out = append(out, ds)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, DatasetsResult{Datasets: out})
}

func (s *Server) datasetByPath(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	fp := r.URL.Query().Get("path")
	if fp == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "missing ?path=")
		return
	}
	if _, err := s.al.Authorize(ai.creds, fp, adal.PermRead); err != nil {
		s.fail(w, err)
		return
	}
	ds, ok := s.cfg.Meta.ByPath(fp)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "no dataset at "+fp)
		return
	}
	writeJSON(w, http.StatusOK, ds)
}

func (s *Server) tagDataset(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	var req TagRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if _, err := s.al.Authorize(ai.creds, req.Path, adal.PermWrite); err != nil {
		s.fail(w, err)
		return
	}
	ds, ok := s.cfg.Meta.ByPath(req.Path)
	if !ok {
		writeErr(w, http.StatusNotFound, "not_found", "no dataset at "+req.Path)
		return
	}
	var err error
	if strings.HasSuffix(r.URL.Path, "/untag") {
		err = s.cfg.Meta.Untag(ds.ID, req.Tag)
	} else {
		err = s.cfg.Meta.Tag(ds.ID, req.Tag)
	}
	if err != nil {
		s.fail(w, err)
		return
	}
	ds, _ = s.cfg.Meta.Get(ds.ID)
	writeJSON(w, http.StatusOK, ds)
}

func (s *Server) ingest(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	var req IngestRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Objects) == 0 {
		writeErr(w, http.StatusBadRequest, "bad_request", "empty ingest batch")
		return
	}
	results := make([]IngestObjectResult, len(req.Objects))
	// Store every authorized object first, then register the stored
	// ones in one CreateBatch — the PR 1 bulk path, one shard-lock
	// round (and with a WAL, one group commit) per touched shard.
	// Registration failures remove their stored object: no object is
	// ever stored-but-unregistered ("invisible data is lost data").
	var specs []metadata.CreateSpec
	var specIdx []int
	for i, obj := range req.Objects {
		fp := path.Clean("/" + strings.TrimPrefix(obj.Path, "/"))
		results[i].Path = fp
		if _, err := s.al.Authorize(ai.creds, fp, adal.PermWrite); err != nil {
			results[i].Error = err.Error()
			continue
		}
		wc, err := s.cfg.Layer.Create(fp)
		if err != nil {
			results[i].Error = err.Error()
			continue
		}
		h := sha256.New()
		h.Write(obj.Data)
		_, werr := wc.Write(obj.Data)
		if cerr := wc.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			_ = s.cfg.Layer.Remove(fp)
			results[i].Error = werr.Error()
			continue
		}
		ai.tenant.bytesIn.Add(int64(len(obj.Data)))
		results[i].Size = units.Bytes(len(obj.Data))
		results[i].SHA256 = hex.EncodeToString(h.Sum(nil))
		specs = append(specs, metadata.CreateSpec{
			Project:  obj.Project,
			Path:     fp,
			Size:     results[i].Size,
			Checksum: results[i].SHA256,
			Basic:    obj.Basic,
			Tags:     obj.Tags,
		})
		specIdx = append(specIdx, i)
	}
	registered := 0
	if len(specs) > 0 {
		for j, cr := range s.cfg.Meta.CreateBatch(specs) {
			i := specIdx[j]
			if cr.Err != nil {
				_ = s.cfg.Layer.Remove(results[i].Path)
				results[i].Error = cr.Err.Error()
				results[i].Size = 0
				results[i].SHA256 = ""
				continue
			}
			results[i].DatasetID = cr.Dataset.ID
			registered++
		}
	}
	writeJSON(w, http.StatusOK, IngestResult{Results: results, Registered: registered})
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	writeJSON(w, http.StatusOK, MetricsResult{
		Tenant:   ai.tenant.name,
		Stats:    ai.tenant.stats(),
		Draining: s.draining.Load(),
	})
}

// ---- plumbing ---------------------------------------------------------

// decodeJSON reads a bounded JSON body into v, writing the error
// envelope itself when it fails.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, int64(s.cfg.MaxJSONBody))
	dec := json.NewDecoder(body)
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "payload_too_large",
				fmt.Sprintf("JSON body over %s", s.cfg.MaxJSONBody.SI()))
			return false
		}
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error())
		return false
	}
	return true
}

// fail maps backend errors onto the wire contract.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, adal.ErrDenied):
		writeErr(w, http.StatusForbidden, "denied", err.Error())
	case errors.Is(err, adal.ErrNotFound), errors.Is(err, metadata.ErrNotFound),
		errors.Is(err, adal.ErrNoMount):
		writeErr(w, http.StatusNotFound, "not_found", err.Error())
	case errors.Is(err, adal.ErrExists), errors.Is(err, metadata.ErrDuplicate):
		writeErr(w, http.StatusConflict, "conflict", err.Error())
	default:
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// copyStream moves a body chunk by chunk through a pooled buffer,
// arming the socket deadline before every chunk: the transfer runs
// at the slower end's pace (connection-level backpressure), but a
// peer that stalls completely is cut off after StreamChunkTimeout.
func (s *Server) copyStream(dst io.Writer, src io.Reader, deadline func() error) (int64, error) {
	bp := streamBufPool.Get().(*[]byte)
	defer streamBufPool.Put(bp)
	buf := *bp
	var total int64
	for {
		if err := deadline(); err != nil && !errors.Is(err, http.ErrNotSupported) {
			return total, err
		}
		n, rerr := src.Read(buf)
		if n > 0 {
			wn, werr := dst.Write(buf[:n])
			total += int64(wn)
			if werr != nil {
				return total, werr
			}
		}
		if rerr == io.EOF {
			return total, nil
		}
		if rerr != nil {
			return total, rerr
		}
	}
}

var streamBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 128*1024)
		return &b
	},
}

func writeDeadline(w http.ResponseWriter, d time.Duration) func() error {
	rc := http.NewResponseController(w)
	return func() error { return rc.SetWriteDeadline(time.Now().Add(d)) }
}

func readDeadline(w http.ResponseWriter, d time.Duration) func() error {
	rc := http.NewResponseController(w)
	return func() error { return rc.SetReadDeadline(time.Now().Add(d)) }
}

// parseRange interprets a single-range "bytes=a-b" header against
// size. It returns (-1, 0, true) for malformed specs (RFC 7233:
// ignore and serve the whole body) and ok=false for a well-formed
// but unsatisfiable range.
func parseRange(spec string, size int64) (start, length int64, ok bool) {
	const pfx = "bytes="
	if !strings.HasPrefix(spec, pfx) || strings.Contains(spec, ",") {
		return -1, 0, true
	}
	lo, hi, found := strings.Cut(strings.TrimPrefix(spec, pfx), "-")
	if !found {
		return -1, 0, true
	}
	if lo == "" { // suffix range: last N bytes
		n, err := strconv.ParseInt(hi, 10, 64)
		if err != nil || n <= 0 {
			return -1, 0, true
		}
		if n > size {
			n = size
		}
		return size - n, n, true
	}
	st, err := strconv.ParseInt(lo, 10, 64)
	if err != nil || st < 0 {
		return -1, 0, true
	}
	if st >= size {
		return 0, 0, false
	}
	end := size - 1
	if hi != "" {
		e, err := strconv.ParseInt(hi, 10, 64)
		if err != nil || e < st {
			return -1, 0, true
		}
		if e < end {
			end = e
		}
	}
	return st, end - st + 1, true
}

func retryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs == 0 {
		secs++
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	w.Header().Set("X-LSDF-Retry-After-Ms", strconv.FormatInt(int64(d/time.Millisecond)+1, 10))
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorEnvelope{Error: ErrorBody{Code: code, Status: status, Message: msg}})
}

// envelopeWriter guarantees the JSON-error contract for responses the
// handlers never see: the mux's own 404/405 text bodies (and any
// stray http.Error) are replaced by the canonical envelope.
type envelopeWriter struct {
	rw           http.ResponseWriter
	wroteHeader  bool
	suppressBody bool
	status       int // first status written; annotated onto the trace
}

func (ew *envelopeWriter) Header() http.Header { return ew.rw.Header() }

func (ew *envelopeWriter) WriteHeader(code int) {
	if ew.wroteHeader {
		return
	}
	ew.wroteHeader = true
	ew.status = code
	ct := ew.rw.Header().Get("Content-Type")
	if code >= 400 && !strings.HasPrefix(ct, "application/json") {
		ew.suppressBody = true
		slug := strings.ReplaceAll(strings.ToLower(http.StatusText(code)), " ", "_")
		body, _ := json.Marshal(ErrorEnvelope{Error: ErrorBody{
			Code: slug, Status: code, Message: http.StatusText(code),
		}})
		body = append(body, '\n')
		ew.rw.Header().Set("Content-Type", "application/json")
		ew.rw.Header().Del("X-Content-Type-Options")
		ew.rw.Header().Set("Content-Length", strconv.Itoa(len(body)))
		ew.rw.WriteHeader(code)
		_, _ = ew.rw.Write(body)
		return
	}
	ew.rw.WriteHeader(code)
}

func (ew *envelopeWriter) Write(p []byte) (int, error) {
	if !ew.wroteHeader {
		ew.WriteHeader(http.StatusOK)
	}
	if ew.suppressBody {
		return len(p), nil
	}
	return ew.rw.Write(p)
}

// Flush keeps streamed responses streaming through the wrapper.
func (ew *envelopeWriter) Flush() {
	if f, ok := ew.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.NewResponseController reach the real connection
// for the per-chunk deadlines.
func (ew *envelopeWriter) Unwrap() http.ResponseWriter { return ew.rw }

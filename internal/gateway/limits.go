package gateway

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Tenant declares one community's gateway account: its bearer token,
// the namespace prefixes it may touch, and its fair share of the
// front door — a token-bucket request rate and a bound on requests it
// may hold in flight at once. The gateway builds the adal TokenAuth
// and ACL entries from these declarations, so the same auth machinery
// that guards in-process callers guards the wire.
type Tenant struct {
	// Name is the community (KATRIN, bioquant, ...); it becomes the
	// principal's user name and the tenant key in metrics.
	Name string `json:"name"`
	// Token is the bearer token presented in the Authorization header.
	Token string `json:"token"`
	// Prefixes are namespace prefixes granted read+write (default:
	// "/" + Name).
	Prefixes []string `json:"prefixes,omitempty"`
	// ReadPrefixes are additional read-only grants (shared data).
	ReadPrefixes []string `json:"read_prefixes,omitempty"`
	// RPS is the token-bucket refill rate in requests/second
	// (default 200).
	RPS float64 `json:"rps,omitempty"`
	// Burst is the bucket depth (default 2×RPS).
	Burst int `json:"burst,omitempty"`
	// MaxInFlight bounds the tenant's concurrently admitted requests
	// (default 32). Requests beyond it are rejected with 503 and a
	// Retry-After, so one tenant cannot occupy every handler.
	MaxInFlight int `json:"max_in_flight,omitempty"`
}

func (t Tenant) withDefaults() Tenant {
	if len(t.Prefixes) == 0 && len(t.ReadPrefixes) == 0 {
		t.Prefixes = []string{"/" + t.Name}
	}
	if t.RPS <= 0 {
		t.RPS = 200
	}
	if t.Burst <= 0 {
		t.Burst = int(2 * t.RPS)
	}
	if t.MaxInFlight <= 0 {
		t.MaxInFlight = 32
	}
	return t
}

// TenantStats is one tenant's observable traffic. The counters live
// in the gateway's obs registry (lsdf_gateway_*_total{tenant=...});
// this struct is the stable JSON view of them that /v1/metrics has
// always served.
type TenantStats struct {
	Requests  int64 // admitted requests
	Throttled int64 // 429s from the rate limiter
	Rejected  int64 // 503s from admission control
	BytesIn   int64 // object/ingest payload bytes received
	BytesOut  int64 // object payload bytes served
	InFlight  int64 // currently admitted
}

// tenantState is the runtime half of a Tenant: its token bucket,
// admission gate and counters. The bucket is a classic continuous
// refill: tokens accrue at rps up to burst, one request costs one
// token, and a dry bucket reports how long until the next token so
// the 429 can carry an honest Retry-After. The traffic counters are
// labeled series in the gateway's obs registry, so the same numbers
// back /v1/metrics JSON and the /metrics Prometheus exposition.
type tenantState struct {
	name        string
	maxInFlight int64

	mu     sync.Mutex // guards tokens/last
	tokens float64
	rps    float64
	burst  float64
	last   time.Time

	inFlight  atomic.Int64
	requests  *obs.Counter
	throttled *obs.Counter
	rejected  *obs.Counter
	bytesIn   *obs.Counter
	bytesOut  *obs.Counter
}

func newTenantState(t Tenant, m gwMetrics) *tenantState {
	t = t.withDefaults()
	return &tenantState{
		name:        t.Name,
		maxInFlight: int64(t.MaxInFlight),
		tokens:      float64(t.Burst),
		rps:         t.RPS,
		burst:       float64(t.Burst),
		last:        time.Now(),
		requests:    m.requests.With(t.Name),
		throttled:   m.throttled.With(t.Name),
		rejected:    m.rejected.With(t.Name),
		bytesIn:     m.bytesIn.With(t.Name),
		bytesOut:    m.bytesOut.With(t.Name),
	}
}

// allow takes one token, or reports how long until one accrues.
func (ts *tenantState) allow(now time.Time) (ok bool, retryAfter time.Duration) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	elapsed := now.Sub(ts.last).Seconds()
	if elapsed > 0 {
		ts.tokens = math.Min(ts.burst, ts.tokens+elapsed*ts.rps)
		ts.last = now
	}
	if ts.tokens >= 1 {
		ts.tokens--
		return true, 0
	}
	need := (1 - ts.tokens) / ts.rps
	return false, time.Duration(need * float64(time.Second))
}

// admit claims an in-flight slot; release undoes it.
func (ts *tenantState) admit() bool {
	if ts.inFlight.Add(1) > ts.maxInFlight {
		ts.inFlight.Add(-1)
		return false
	}
	return true
}

func (ts *tenantState) release() { ts.inFlight.Add(-1) }

func (ts *tenantState) stats() TenantStats {
	return TenantStats{
		Requests:  ts.requests.Value(),
		Throttled: ts.throttled.Value(),
		Rejected:  ts.rejected.Value(),
		BytesIn:   ts.bytesIn.Value(),
		BytesOut:  ts.bytesOut.Value(),
		InFlight:  ts.inFlight.Load(),
	}
}

package gateway_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/adal"
	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/metadata"
)

// TestDrainInProcess pins the drain contract against the in-process
// server: a streaming read caught mid-flight by Drain runs to
// completion with correct bytes, new requests get 503 + Retry-After
// the moment the flag is up, and Drain returns only after the last
// in-flight response finishes.
func TestDrainInProcess(t *testing.T) {
	_, srv, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{
			{Name: "bio", Token: "tb", Prefixes: []string{"/ddn/bio"}, RPS: 10000, MaxInFlight: 16},
		}})
	ctx := context.Background()
	noRetry := client.Options{MaxRetries: -1}
	c := newClient(t, hs, "tb", noRetry)

	big := bytes.Repeat([]byte("drain-me "), 3<<20) // 27 MiB: cannot fit in socket buffers
	if _, err := c.PutObject(ctx, "/ddn/bio/big.raw", big, ""); err != nil {
		t.Fatal(err)
	}

	rc, err := c.Get(ctx, "/ddn/bio/big.raw")
	if err != nil {
		t.Fatal(err)
	}
	// Read a sliver so the handler is demonstrably mid-stream, then
	// leave the rest in flight.
	head := make([]byte, 64*1024)
	if _, err := io.ReadFull(rc, head); err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- srv.Drain(dctx)
	}()

	// The drain gate must come up while our stream is still open.
	deadline := time.Now().Add(2 * time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("Draining() never became true")
		}
		time.Sleep(time.Millisecond)
	}
	_, err = c.Metrics(ctx)
	if !client.IsOverload(err) {
		t.Fatalf("new request during drain: %v, want 503", err)
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while a stream was still in flight", err)
	default:
	}

	// The in-flight stream finishes, byte-perfect.
	rest, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("in-flight stream broken by drain: %v", err)
	}
	if got := append(head, rest...); !bytes.Equal(got, big) {
		t.Fatalf("drained stream returned %d bytes, want %d", len(got), len(big))
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// ---- cross-process harness --------------------------------------------
//
// The graceful-drain and kill -9 tests run lsdfd's production serving
// path (gateway.ServeDraining over a real facility) in a child
// process — this test binary re-executed with the child environment
// set, the E15 pattern extended across the HTTP boundary.

const (
	gwChildEnv = "LSDF_GW_CHILD"
	gwDataEnv  = "LSDF_GW_DATA"
	gwWALEnv   = "LSDF_GW_WAL"
	gwAddrEnv  = "LSDF_GW_ADDRFILE"
	gwToken    = "child-token"
)

// TestMain doubles this binary as the lsdfd child.
func TestMain(m *testing.M) {
	if os.Getenv(gwChildEnv) != "" {
		gatewayChildMain()
	}
	os.Exit(m.Run())
}

// gatewayChildMain is what cmd/lsdfd does, in miniature: facility
// (durable metadata when a WAL dir is given), a LocalFS data mount,
// a gateway, ServeDraining on SIGTERM. It never returns normally —
// it exits 0 after a clean drain, or is SIGKILLed.
func gatewayChildMain() {
	die := func(err error) {
		fmt.Fprintln(os.Stderr, "gw child:", err)
		os.Exit(2)
	}
	fac, err := facility.New(facility.Options{DFSNodes: 2, WALDir: os.Getenv(gwWALEnv)})
	if err != nil {
		die(err)
	}
	local, err := adal.NewLocalFS("data", os.Getenv(gwDataEnv))
	if err != nil {
		die(err)
	}
	if err := fac.Layer.Mount("/data", local); err != nil {
		die(err)
	}
	srv, err := gateway.ForFacility(fac, gateway.Config{
		Tenants: []gateway.Tenant{{Name: "child", Token: gwToken, Prefixes: []string{"/"},
			RPS: 1e6, MaxInFlight: 256}},
	})
	if err != nil {
		die(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		die(err)
	}
	// Publish the port atomically: write aside, then rename.
	addrFile := os.Getenv(gwAddrEnv)
	if err := os.WriteFile(addrFile+".tmp", []byte(ln.Addr().String()), 0o644); err != nil {
		die(err)
	}
	if err := os.Rename(addrFile+".tmp", addrFile); err != nil {
		die(err)
	}
	if err := srv.ServeDraining(&http.Server{}, ln, 30*time.Second, syscall.SIGTERM); err != nil {
		die(err)
	}
	os.Exit(0)
}

// startChild launches the child lsdfd and waits until it serves.
func startChild(t *testing.T, dataDir, walDir string) (*exec.Cmd, *client.Client) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	addrFile := filepath.Join(t.TempDir(), "addr")
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(),
		gwChildEnv+"=1", gwDataEnv+"="+dataDir, gwWALEnv+"="+walDir, gwAddrEnv+"="+addrFile)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			addr = string(data)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("child never published its address")
		}
		time.Sleep(10 * time.Millisecond)
	}
	c, err := client.New("http://"+addr, gwToken, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if err := c.Health(context.Background()); err == nil {
			return cmd, c
		}
		if time.Now().After(deadline) {
			t.Fatal("child never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestGracefulDrainAcrossProcess sends a real SIGTERM to a real lsdfd
// process while a streaming read is mid-flight: the stream must
// finish byte-perfect, new requests must be refused with the drain
// 503, and the process must exit 0.
func TestGracefulDrainAcrossProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, c := startChild(t, t.TempDir(), "")
	ctx := context.Background()

	big := bytes.Repeat([]byte("sigterm-survivor "), 2<<20) // 32 MiB
	if _, err := c.PutObject(ctx, "/data/big.raw", big, ""); err != nil {
		t.Fatal(err)
	}

	rc, err := c.Get(ctx, "/data/big.raw")
	if err != nil {
		t.Fatal(err)
	}
	head := make([]byte, 64*1024)
	if _, err := io.ReadFull(rc, head); err != nil {
		t.Fatal(err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	// A fresh connection must soon see the drain refusal (503) —
	// never a success — while our stream stays open.
	probe, err := client.New("http://"+hostOf(t, c), gwToken, client.Options{MaxRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	sawDrain := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		err := probe.Health(ctx)
		if err == nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if client.IsOverload(err) {
			sawDrain = true
		}
		break // 503 or (post-shutdown) connection refused: refusal either way
	}
	if !sawDrain {
		t.Error("never observed the 503 drain refusal after SIGTERM")
	}

	rest, err := io.ReadAll(rc)
	rc.Close()
	if err != nil {
		t.Fatalf("in-flight stream broken by SIGTERM drain: %v", err)
	}
	if got := append(head, rest...); !bytes.Equal(got, big) {
		t.Fatalf("stream returned %d bytes, want %d", len(got), len(big))
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("child exit after drain: %v", err)
	}
}

// hostOf recovers the child's host:port from the client a test
// already holds (startChild returned it from the addr file).
func hostOf(t *testing.T, c *client.Client) string {
	t.Helper()
	return c.Host()
}

// TestKill9NoAckedIngestLost extends E15's crash-consistency
// contract across the process and HTTP boundary: the parent ingests
// durable batches through the real client and counts only batches
// the gateway acknowledged over the wire, then SIGKILLs lsdfd
// mid-ingest. Recovery on the same WAL directory must surface every
// acknowledged dataset, and every acknowledged object's bytes must
// be intact on disk.
func TestKill9NoAckedIngestLost(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dataDir, walDir := t.TempDir(), t.TempDir()
	cmd, c := startChild(t, dataDir, walDir)
	ctx := context.Background()

	const batchSize = 8
	const killAfter = 12 // acked batches before the trigger
	type acked struct{ path, sha string }
	var ackedObjs []acked
	var ackedBatches atomic.Int64

	killed := make(chan struct{})
	go func() {
		for {
			if ackedBatches.Load() >= killAfter {
				cmd.Process.Kill() // SIGKILL: no drain, no flush, no goodbye
				close(killed)
				return
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

ingest:
	for b := 0; ; b++ {
		objs := make([]gateway.IngestObject, batchSize)
		for i := range objs {
			data := bytes.Repeat([]byte{byte(b), byte(i)}, 256+i)
			objs[i] = gateway.IngestObject{
				Path:    fmt.Sprintf("/data/gw/%04d/%02d.raw", b, i),
				Project: "gw-crash", Data: data, Tags: []string{"raw"},
			}
		}
		res, err := c.Ingest(ctx, objs)
		if err != nil {
			break ingest // the kill landed mid-request: this batch was never acked
		}
		if res.Registered != batchSize {
			t.Fatalf("batch %d partially registered before kill: %+v", b, res.Results)
		}
		// The HTTP 200 is the durability ack: group commit done.
		for _, r := range res.Results {
			ackedObjs = append(ackedObjs, acked{r.Path, r.SHA256})
		}
		ackedBatches.Add(1)
	}
	if n := ackedBatches.Load(); n < killAfter {
		t.Fatalf("only %d batches acked before the kill; window too small", n)
	}
	<-killed
	cmd.Wait() // expected to report the kill

	// The machine is back. Recover the metadata store on the same WAL
	// directory and audit against what the wire acknowledged.
	store, err := metadata.Open(metadata.Options{WALDir: walDir})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer store.Close()

	lost, corrupt := 0, 0
	for _, a := range ackedObjs {
		ds, ok := store.ByPath(a.path)
		if !ok {
			lost++
			t.Errorf("acked-over-HTTP dataset lost: %s", a.path)
			continue
		}
		if ds.Checksum != a.sha || !ds.HasTag("raw") {
			corrupt++
			t.Errorf("acked dataset recovered with wrong state: %s", a.path)
		}
		// The bytes too: the object the gateway stored before the ack
		// must still hash to what the ack reported.
		rel := filepath.Join(dataDir, filepath.FromSlash(a.path[len("/data/"):]))
		data, err := os.ReadFile(rel)
		if err != nil {
			corrupt++
			t.Errorf("acked object bytes missing: %s: %v", a.path, err)
			continue
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:]) != a.sha {
			corrupt++
			t.Errorf("acked object bytes corrupt: %s", a.path)
		}
	}

	// Nothing phantom: everything recovered was actually submitted.
	phantoms := 0
	for _, ds := range store.Find(metadata.Query{Project: "gw-crash"}) {
		var b, i int
		if _, err := fmt.Sscanf(ds.Path, "/data/gw/%04d/%02d.raw", &b, &i); err != nil ||
			int64(b) > ackedBatches.Load() || i >= batchSize {
			phantoms++
			t.Errorf("phantom dataset recovered: %s", ds.Path)
		}
	}
	t.Logf("kill -9 after %d acked batches (%d objects): lost=%d corrupt=%d phantoms=%d",
		ackedBatches.Load(), len(ackedObjs), lost, corrupt, phantoms)
}

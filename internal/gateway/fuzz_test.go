package gateway_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/facility"
	"repro/internal/gateway"
)

// fuzzServer is built once per fuzz process: a real facility behind a
// real gateway, shared across executions the way a long-lived lsdfd
// is shared across requests.
var (
	fuzzOnce sync.Once
	fuzzSrv  *gateway.Server
)

func fuzzGateway(tb testing.TB) *gateway.Server {
	fuzzOnce.Do(func() {
		fac, err := facility.New(facility.Options{DFSNodes: 2})
		if err != nil {
			tb.Fatal(err)
		}
		srv, err := gateway.ForFacility(fac, gateway.Config{
			Tenants: []gateway.Tenant{{
				Name: "fuzz", Token: "fuzz-token", Prefixes: []string{"/ddn/fuzz"},
				RPS: 1e9, Burst: 1 << 30, MaxInFlight: 1 << 20,
			}},
		})
		if err != nil {
			tb.Fatal(err)
		}
		fuzzSrv = srv
	})
	return fuzzSrv
}

// FuzzGatewayRequest throws arbitrary methods, paths, headers and
// bodies at the front door and pins the wire contract: the server
// never panics, and every response with status >= 400 is a
// well-formed JSON error envelope whose status matches the response.
func FuzzGatewayRequest(f *testing.F) {
	seeds := []struct {
		method, path, auth, ctype, rng, body string
	}{
		{"GET", "/v1/healthz", "", "", "", ""},
		{"GET", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "", ""},
		{"PUT", "/v1/objects/ddn/fuzz/x?project=p&tags=a,b", "Bearer fuzz-token", "application/octet-stream", "", "payload"},
		{"GET", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "bytes=2-5", ""},
		{"GET", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "bytes=-3", ""},
		{"GET", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "bytes=99999-", ""},
		{"GET", "/v1/objects/../../etc/passwd", "Bearer fuzz-token", "", "", ""},
		{"GET", "/v1/list?prefix=/ddn/fuzz", "Bearer fuzz-token", "", "", ""},
		{"GET", "/v1/stat/ddn/fuzz/x", "Bearer wrong", "", "", ""},
		{"POST", "/v1/ingest", "Bearer fuzz-token", "application/json", "", `{"objects":[{"path":"/ddn/fuzz/i","project":"p","data":"aGk="}]}`},
		{"POST", "/v1/ingest", "Bearer fuzz-token", "application/json", "", `{"objects":`},
		{"POST", "/v1/jobs", "Bearer fuzz-token", "application/json", "", `{"job":"wordcount","inputs":["/x"],"output_dir":"/y"}`},
		{"POST", "/v1/datasets/tag", "Bearer fuzz-token", "application/json", "", `{"path":"/ddn/fuzz/x","tag":"t"}`},
		{"DELETE", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "", ""},
		{"GET", "/v1/datasets?tag=a&limit=-3", "Bearer fuzz-token", "", "", ""},
		{"OPTIONS", "/v1/objects/ddn/fuzz/x", "Bearer fuzz-token", "", "", ""},
		{"GET", "/nowhere", "", "", "", ""},
		{"TRACE", "\x00", "Bearer \xff\xfe", "\n", "bytes=,,,", "\x00\x01\x02"},
	}
	for _, s := range seeds {
		f.Add(s.method, s.path, s.auth, s.ctype, s.rng, s.body)
	}

	f.Fuzz(func(t *testing.T, method, path, auth, ctype, rng, body string) {
		srv := fuzzGateway(t)

		// Requests the Go HTTP stack itself refuses to construct are
		// outside the contract — a real listener would have rejected
		// them before the gateway saw anything.
		req, ok := buildRequest(method, path, body)
		if !ok {
			t.Skip()
		}
		setHeader(req, "Authorization", auth)
		setHeader(req, "Content-Type", ctype)
		setHeader(req, "Range", rng)

		rec := httptest.NewRecorder()
		func() {
			defer func() {
				if p := recover(); p != nil && p != http.ErrAbortHandler {
					t.Fatalf("gateway panicked on %s %q: %v", method, path, p)
				}
			}()
			srv.ServeHTTP(rec, req)
		}()

		resp := rec.Result()
		if resp.StatusCode < 400 {
			return
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %q -> %d with Content-Type %q, want JSON envelope", method, path, resp.StatusCode, ct)
		}
		var env gateway.ErrorEnvelope
		if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
			t.Fatalf("%s %q -> %d with non-envelope body %q: %v", method, path, resp.StatusCode, rec.Body.String(), err)
		}
		if env.Error.Status != resp.StatusCode {
			t.Fatalf("%s %q: envelope status %d != response status %d", method, path, env.Error.Status, resp.StatusCode)
		}
		if env.Error.Code == "" || env.Error.Message == "" {
			t.Fatalf("%s %q: envelope missing code/message: %+v", method, path, env.Error)
		}
	})
}

// buildRequest constructs the request, absorbing the panics
// httptest.NewRequest raises on inputs no wire request could carry.
func buildRequest(method, path, body string) (req *http.Request, ok bool) {
	defer func() {
		if recover() != nil {
			req, ok = nil, false
		}
	}()
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	return httptest.NewRequest(method, path, strings.NewReader(body)), true
}

// setHeader skips values net/http would refuse to serialize; a real
// client could never deliver them.
func setHeader(req *http.Request, key, val string) {
	if val == "" {
		return
	}
	defer func() { recover() }()
	req.Header.Set(key, val)
}

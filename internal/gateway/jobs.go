package gateway

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/adal"
	"repro/internal/mapreduce"
	"repro/internal/mrpc"
	"repro/internal/obs"
)

// Map and reduce functions are Go code — they cannot cross the wire.
// What crosses the wire is a job *name* resolved against a server-side
// template registry, Hadoop-streaming style: the operator registers
// the community's analysis programs once, and experiments submit
// (name, inputs, output, args) tuples. JobBuilder turns one request
// into a runnable config; the server then fills in Inputs/OutputDir/
// NumReducers from the request and hands it to Config.RunJob.
type JobBuilder func(req JobRequest) (mapreduce.Config, error)

// BuiltinJobs is the default template registry: the generic text
// analyses every facility offers. Facility-specific jobs (k-mer
// counting, MIP visualization) are registered alongside by the
// operator.
func BuiltinJobs() map[string]JobBuilder {
	return map[string]JobBuilder{
		"wordcount": func(JobRequest) (mapreduce.Config, error) {
			return mapreduce.Config{
				Mapper: mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
					for _, f := range bytes.Fields(value) {
						emit(string(f), one)
					}
					return nil
				}),
				Combiner: sumReducer(),
				Reducer:  sumReducer(),
				Format:   mapreduce.TextInput,
				Locality: true,
			}, nil
		},
		"linecount": func(JobRequest) (mapreduce.Config, error) {
			return mapreduce.Config{
				Mapper: mapreduce.MapperFunc(func(_ string, _ []byte, emit mapreduce.Emit) error {
					emit("lines", one)
					return nil
				}),
				Combiner: sumReducer(),
				Reducer:  sumReducer(),
				Format:   mapreduce.TextInput,
				Locality: true,
			}, nil
		},
		"grep": func(req JobRequest) (mapreduce.Config, error) {
			pattern := req.Args["pattern"]
			if pattern == "" {
				return mapreduce.Config{}, fmt.Errorf("grep needs args.pattern")
			}
			pat := []byte(pattern)
			return mapreduce.Config{
				Mapper: mapreduce.MapperFunc(func(key string, value []byte, emit mapreduce.Emit) error {
					if bytes.Contains(value, pat) {
						emit(key, value)
					}
					return nil
				}),
				Format:   mapreduce.TextInput,
				MapOnly:  true,
				Locality: true,
			}, nil
		},
	}
}

var one = []byte("1")

func sumReducer() mapreduce.Reducer {
	return mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
		total := 0
		for _, v := range values {
			n, err := strconv.Atoi(string(bytes.TrimSpace(v)))
			if err != nil {
				return fmt.Errorf("non-numeric count for %q: %w", key, err)
			}
			total += n
		}
		emit(key, []byte(strconv.Itoa(total)))
		return nil
	})
}

// jobState tracks one submitted job; mutated only under Server.jobsMu.
type jobState struct {
	id       string
	job      string
	tenant   string
	state    string
	started  time.Time
	finished time.Time
	errMsg   string
	result   *mapreduce.Result
}

func (j *jobState) status() JobStatus {
	st := JobStatus{ID: j.id, Job: j.job, Tenant: j.tenant, State: j.state, Error: j.errMsg}
	if j.state != JobRunning {
		st.DurationMS = j.finished.Sub(j.started).Milliseconds()
	}
	if j.result != nil {
		st.Counters = j.result.Counters
		st.OutputFiles = j.result.OutputFiles
	}
	return st
}

func (s *Server) submitJob(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	if s.cfg.RunJob == nil && s.cfg.RunSpec == nil {
		writeErr(w, http.StatusNotImplemented, "jobs_disabled", "this lsdfd has no analysis cluster")
		return
	}
	var req JobRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Inputs) == 0 || req.OutputDir == "" {
		writeErr(w, http.StatusBadRequest, "bad_request", "job needs inputs and output_dir")
		return
	}
	// Unknown templates 404 before authorization (name existence is
	// not path-private); the spec path asks its registry through
	// Config.HasJob, the legacy path its builder map.
	if s.cfg.RunSpec != nil {
		if s.cfg.HasJob != nil && !s.cfg.HasJob(req.Job) {
			writeErr(w, http.StatusNotFound, "unknown_job", fmt.Sprintf("no job template %q", req.Job))
			return
		}
	} else if _, ok := s.cfg.Jobs[req.Job]; !ok {
		writeErr(w, http.StatusNotFound, "unknown_job", fmt.Sprintf("no job template %q", req.Job))
		return
	}
	// Jobs run on the analysis cluster: inputs and outputs are DFS
	// paths, authorized against their /hdfs addresses so the ACL
	// grants that govern direct reads govern job access too.
	for _, in := range req.Inputs {
		if _, err := s.al.Authorize(ai.creds, "/hdfs"+in, adal.PermRead); err != nil {
			s.fail(w, err)
			return
		}
	}
	if _, err := s.al.Authorize(ai.creds, "/hdfs"+req.OutputDir, adal.PermWrite); err != nil {
		s.fail(w, err)
		return
	}

	// Resolve the execution path: RunSpec hands the request to the
	// facility as a wire-level spec (distributed master when one
	// runs); the legacy RunJob path builds the config gateway-side.
	var run func() (*mapreduce.Result, error)
	if s.cfg.RunSpec != nil {
		// The request's trace ID rides the spec, so the master's job
		// span and the workers' attempt spans land in the same trace
		// as the gateway's gw.submit_job.
		wait, err := s.cfg.RunSpec(mrpc.JobSpec{
			Name:        req.Job,
			Inputs:      req.Inputs,
			OutputDir:   req.OutputDir,
			NumReducers: req.NumReducers,
			Args:        req.Args,
			Trace:       obs.TraceID(r.Context()),
		}, ai.tenant.name)
		if err != nil {
			if errors.Is(err, mapreduce.ErrUnknownTemplate) {
				writeErr(w, http.StatusNotFound, "unknown_job", err.Error())
			} else {
				writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
			}
			return
		}
		run = wait
	} else {
		builder := s.cfg.Jobs[req.Job]
		cfg, err := builder(req)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		cfg.Name = req.Job
		cfg.Inputs = req.Inputs
		cfg.OutputDir = req.OutputDir
		if req.NumReducers > 0 {
			cfg.NumReducers = req.NumReducers
		}
		run = func() (*mapreduce.Result, error) { return s.cfg.RunJob(cfg) }
	}

	s.jobsMu.Lock()
	s.jobSeq++
	js := &jobState{
		id:      fmt.Sprintf("j-%06d", s.jobSeq),
		job:     req.Job,
		tenant:  ai.tenant.name,
		state:   JobRunning,
		started: time.Now(),
	}
	s.jobs[js.id] = js
	s.jobsMu.Unlock()

	go func() {
		res, err := run()
		s.jobsMu.Lock()
		defer s.jobsMu.Unlock()
		js.finished = time.Now()
		if err != nil {
			js.state = JobFailed
			js.errMsg = err.Error()
			return
		}
		js.state = JobDone
		js.result = res
	}()
	writeJSON(w, http.StatusAccepted, JobStatus{ID: js.id, Job: js.job, Tenant: js.tenant, State: JobRunning})
}

func (s *Server) jobStatus(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	id := r.PathValue("id")
	s.jobsMu.Lock()
	js, ok := s.jobs[id]
	var st JobStatus
	if ok {
		st = js.status()
	}
	s.jobsMu.Unlock()
	// Another tenant's job ID behaves like a missing one: job
	// existence is tenant-private.
	if !ok || st.Tenant != ai.tenant.name {
		writeErr(w, http.StatusNotFound, "not_found", "no job "+id)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	ai := reqAuth(r)
	s.jobsMu.Lock()
	out := make([]JobStatus, 0, len(s.jobs))
	for _, js := range s.jobs {
		if js.tenant == ai.tenant.name {
			out = append(out, js.status())
		}
	}
	s.jobsMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return strings.Compare(out[i].ID, out[j].ID) < 0 })
	writeJSON(w, http.StatusOK, JobsResult{Jobs: out})
}

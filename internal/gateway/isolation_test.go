package gateway_test

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
)

// TestNamespaceIsolation pins the multi-tenant confidentiality
// contract: no request a tenant can make — list, stat, read, query,
// job status — ever surfaces another community's namespace.
func TestNamespaceIsolation(t *testing.T) {
	_, _, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{
			{Name: "alice", Token: "ta", Prefixes: []string{"/ddn/alice", "/hdfs/alice"}},
			{Name: "bob", Token: "tb", Prefixes: []string{"/ddn/bob", "/hdfs/bob"}},
		}})
	ctx := context.Background()
	noRetry := client.Options{MaxRetries: -1}
	alice := newClient(t, hs, "ta", noRetry)
	bob := newClient(t, hs, "tb", noRetry)

	// Both communities ingest into the shared project "shared".
	for i := 0; i < 5; i++ {
		if _, err := alice.PutObject(ctx, fmt.Sprintf("/ddn/alice/a-%d.raw", i), []byte("alice"), "shared", "raw"); err != nil {
			t.Fatal(err)
		}
		if _, err := bob.PutObject(ctx, fmt.Sprintf("/ddn/bob/b-%d.raw", i), []byte("bob"), "shared", "raw"); err != nil {
			t.Fatal(err)
		}
	}

	// Listing your own prefix works; listing the shared parent or the
	// other tenant's prefix is denied outright.
	own, err := alice.List(ctx, "/ddn/alice")
	if err != nil || len(own) != 5 {
		t.Fatalf("alice list own: %v (%d entries)", err, len(own))
	}
	if _, err := alice.List(ctx, "/ddn"); !client.IsDenied(err) {
		t.Fatalf("alice list /ddn: %v, want denied", err)
	}
	if _, err := alice.List(ctx, "/ddn/bob"); !client.IsDenied(err) {
		t.Fatalf("alice list bob's prefix: %v, want denied", err)
	}
	if _, err := alice.ReadObject(ctx, "/ddn/bob/b-0.raw"); !client.IsDenied(err) {
		t.Fatal("alice read bob's object not denied")
	}

	// Metadata queries have no prefix gate — the per-dataset ACL
	// filter is the only thing standing between tenants. A query over
	// the shared project must return only the caller's datasets.
	for name, c := range map[string]*client.Client{"alice": alice, "bob": bob} {
		found, err := c.Find(ctx, client.FindQuery{Project: "shared"})
		if err != nil {
			t.Fatal(err)
		}
		if len(found) != 5 {
			t.Fatalf("%s sees %d shared datasets, want only their own 5", name, len(found))
		}
		for _, ds := range found {
			if !bytes.Contains([]byte(ds.Path), []byte("/"+name+"/")) {
				t.Fatalf("%s's query leaked %s", name, ds.Path)
			}
		}
	}

	// A failed authentication leaks nothing either — not even whether
	// the prefix exists.
	stranger := newClient(t, hs, "no-such-token", noRetry)
	if _, err := stranger.List(ctx, "/ddn/alice"); err == nil || client.IsNotFound(err) {
		t.Fatalf("unauthenticated list: %v", err)
	}

	// Job existence is tenant-private: bob probing alice's job IDs
	// gets 404, indistinguishable from an ID that never existed.
	js, err := alice.SubmitJob(ctx, gateway.JobRequest{
		Job: "linecount", Inputs: []string{"/alice/in.txt"}, OutputDir: "/alice/out"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bob.Job(ctx, js.ID); !client.IsNotFound(err) {
		t.Fatalf("bob sees alice's job: %v", err)
	}
	if jobs, err := bob.Jobs(ctx); err != nil || len(jobs) != 0 {
		t.Fatalf("bob's job list: %v %+v", err, jobs)
	}
}

// TestOverloadIsolation is the fairness half of multi-tenancy: one
// tenant saturating its limits eats 429s/503s itself, while a quiet
// tenant's requests keep being admitted with bounded latency. Run
// under -race in CI.
func TestOverloadIsolation(t *testing.T) {
	_, srv, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{
			{Name: "hog", Token: "th", Prefixes: []string{"/ddn/hog"}, RPS: 50, Burst: 20, MaxInFlight: 4},
			{Name: "quiet", Token: "tq", Prefixes: []string{"/ddn/quiet"}, RPS: 5000, MaxInFlight: 32},
		}})
	ctx := context.Background()
	noRetry := client.Options{MaxRetries: -1}
	quiet := newClient(t, hs, "tq", noRetry)

	if _, err := quiet.PutObject(ctx, "/ddn/quiet/probe.raw", []byte("probe"), ""); err != nil {
		t.Fatal(err)
	}

	// 32 goroutines hammer the hog tenant flat out for the duration —
	// far past both its rate and its in-flight bound.
	const dur = 700 * time.Millisecond
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var hogOK, hogRejected atomic.Int64
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			hc := newClient(t, hs, "th", noRetry)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := hc.Metrics(ctx); err != nil {
					hogRejected.Add(1)
				} else {
					hogOK.Add(1)
				}
			}
		}()
	}

	// Meanwhile the quiet tenant reads sequentially, measuring what
	// the front door feels like next to a noisy neighbor.
	var lat []time.Duration
	deadline := time.Now().Add(dur)
	for time.Now().Before(deadline) {
		start := time.Now()
		if _, err := quiet.ReadObject(ctx, "/ddn/quiet/probe.raw"); err != nil {
			t.Errorf("quiet tenant failed during hog saturation: %v", err)
		}
		lat = append(lat, time.Since(start))
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if hogRejected.Load() == 0 {
		t.Fatal("hog was never throttled/rejected — the limits did nothing")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p99 := lat[len(lat)*99/100]
	if p99 > 250*time.Millisecond {
		t.Errorf("quiet tenant p99 = %v under hog saturation, want < 250ms", p99)
	}

	stats := srv.Stats()
	if stats["hog"].Throttled == 0 {
		t.Errorf("hog throttled count = 0 with RPS 50 under 32-way hammering: %+v", stats["hog"])
	}
	if stats["quiet"].Throttled != 0 || stats["quiet"].Rejected != 0 {
		t.Errorf("quiet tenant was throttled by the hog's load: %+v", stats["quiet"])
	}
	t.Logf("hog: ok=%d rejected=%d stats=%+v; quiet: %d reads, p99=%v",
		hogOK.Load(), hogRejected.Load(), stats["hog"], len(lat), p99)
}

// TestAdmissionBound pins the in-flight limit mechanically: with
// MaxInFlight=2 and handlers parked mid-stream, the third concurrent
// request is rejected with a 503 envelope and Retry-After — it does
// not queue into the facility.
func TestAdmissionBound(t *testing.T) {
	_, _, hs := startGateway(t, facility.Options{},
		gateway.Config{Tenants: []gateway.Tenant{
			{Name: "narrow", Token: "tn", Prefixes: []string{"/ddn/narrow"}, RPS: 10000, MaxInFlight: 2},
		}})
	ctx := context.Background()
	noRetry := client.Options{MaxRetries: -1}
	c := newClient(t, hs, "tn", noRetry)

	// Big enough that loopback socket buffers (server send + client
	// receive) cannot swallow it whole — the handlers must stay
	// parked mid-copyStream holding their admission slots.
	big := bytes.Repeat([]byte("x"), 24<<20)
	if _, err := c.PutObject(ctx, "/ddn/narrow/big.raw", big, ""); err != nil {
		t.Fatal(err)
	}

	// Two streaming reads park in the handlers: opened but unread, so
	// the server blocks on the socket (connection backpressure) and
	// the admission slots stay occupied.
	var parked []interface{ Close() error }
	for i := 0; i < 2; i++ {
		rc, err := c.Get(ctx, "/ddn/narrow/big.raw")
		if err != nil {
			t.Fatal(err)
		}
		parked = append(parked, rc)
	}
	defer func() {
		for _, rc := range parked {
			rc.Close()
		}
	}()
	// Give the two handlers a moment to be admitted and block.
	time.Sleep(50 * time.Millisecond)

	_, err := c.Metrics(ctx)
	if !client.IsOverload(err) {
		t.Fatalf("third concurrent request: %v, want 503 overloaded", err)
	}

	// Releasing a slot re-opens the door.
	parked[0].Close()
	parked = parked[1:]
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Metrics(ctx); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after closing a parked stream")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package gateway_test

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/facility"
	"repro/internal/gateway"
	"repro/internal/gateway/client"
	"repro/internal/obs"
)

func obsGateway(t *testing.T) (*gateway.Server, string, *client.Client) {
	t.Helper()
	_, srv, hs := startGateway(t, facility.Options{Sites: []string{"near"}}, gateway.Config{
		Tenants: []gateway.Tenant{{
			Name: "katrin", Token: "k-token", Prefixes: []string{"/"},
			RPS: 1e9, Burst: 1 << 30, MaxInFlight: 1 << 20,
		}},
	})
	return srv, hs.URL, newClient(t, hs, "k-token")
}

// TestMetricsExposition pins the observability plane's contract: GET
// /metrics answers without credentials, stays up while draining, and
// its Prometheus text carries the gateway's per-tenant counters in
// sync with the legacy /v1/metrics JSON view.
func TestMetricsExposition(t *testing.T) {
	srv, base, c := obsGateway(t)

	ctx := context.Background()
	if _, err := c.PutObject(ctx, "/sites/katrin/obj", []byte("payload"), "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadObject(ctx, "/sites/katrin/obj"); err != nil {
		t.Fatal(err)
	}

	// Unauthenticated scrape.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics without auth: %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		`lsdf_gateway_requests_total{tenant="katrin"}`,
		`lsdf_gateway_bytes_in_total{tenant="katrin"} 7`,
		`lsdf_gateway_bytes_out_total{tenant="katrin"} 7`,
		"lsdf_gateway_in_flight",
		"lsdf_gateway_draining 0",
		`lsdf_gateway_request_ns_count{op="get_object"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The compatibility JSON view reads the same obs counters.
	mr, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Stats.BytesIn != 7 || mr.Stats.BytesOut != 7 {
		t.Fatalf("JSON view out of sync with obs counters: %+v", mr.Stats)
	}
	if mr.Stats.Requests < 2 {
		t.Fatalf("requests = %d, want >= 2", mr.Stats.Requests)
	}

	// Still scrapeable while draining, and the gauge flips.
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics while draining: %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "lsdf_gateway_draining 1") {
		t.Error("draining gauge did not flip")
	}
}

// TestRequestTracing pins the trace lifecycle over the wire: a
// client-minted ID is adopted and echoed, the trace lands in the
// debug ring with the gateway's root and per-op spans plus the mount
// stack's spans, and unknown IDs get the envelope 404.
func TestRequestTracing(t *testing.T) {
	srv, base, c := obsGateway(t)

	ctx := context.Background()
	if _, err := c.PutObject(ctx, "/sites/katrin/traced", []byte("hello trace"), "p"); err != nil {
		t.Fatal(err)
	}

	// Client-minted trace: the gateway must adopt the ID, not mint.
	id := obs.NewTraceID()
	tctx := obs.ContextWithTrace(ctx, &obs.TraceData{ID: id})
	if _, err := c.ReadObject(tctx, "/sites/katrin/traced"); err != nil {
		t.Fatal(err)
	}
	tv, err := c.Trace(ctx, id)
	if err != nil {
		t.Fatalf("trace %s not in ring: %v", id, err)
	}
	spans := make(map[string]bool)
	for _, sp := range tv.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"gw.request", "gw.auth", "gw.get_object"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (got %v)", want, tv.Spans)
		}
	}

	// Server-minted trace: echoed in the response header.
	req, _ := http.NewRequest(http.MethodGet, base+"/v1/stat/sites/katrin/traced", nil)
	req.Header.Set("Authorization", "Bearer k-token")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	minted := resp.Header.Get(obs.TraceHeader)
	if minted == "" {
		t.Fatal("no X-LSDF-Trace echoed on a headerless request")
	}
	if _, ok := srv.TraceRing().Lookup(minted); !ok {
		t.Fatalf("minted trace %s not in ring", minted)
	}

	// Recent traces are served newest-first without credentials.
	views, err := c.Traces(ctx, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(views) == 0 {
		t.Fatal("empty trace ring")
	}

	// Unknown IDs keep the JSON-envelope error contract.
	resp, err = http.Get(base + "/v1/debug/traces?id=no-such-trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("404 content type %q, want JSON envelope", ct)
	}
}

package gateway

import (
	"time"

	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/units"
)

// Wire types shared by the server and internal/gateway/client. Object
// bodies never appear here — they stream as raw HTTP bodies; JSON
// carries only control-plane payloads (ingest batches ride as base64
// inside IngestObject.Data, the bulk-registration path for small DAQ
// objects).

// ErrorEnvelope is the one shape every gateway error takes.
type ErrorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody carries the machine-readable error.
type ErrorBody struct {
	Code    string `json:"code"`
	Status  int    `json:"status"`
	Message string `json:"message"`
}

// ObjectInfo is one namespace entry, joined with its dataset record
// when the object is registered.
type ObjectInfo struct {
	Path      string      `json:"path"`
	Size      units.Bytes `json:"size"`
	ModTime   time.Time   `json:"mod_time"`
	IsDir     bool        `json:"is_dir,omitempty"`
	DatasetID string      `json:"dataset_id,omitempty"`
	Project   string      `json:"project,omitempty"`
	Tags      []string    `json:"tags,omitempty"`
	Checksum  string      `json:"checksum,omitempty"`
}

// ListResult is the /v1/list response.
type ListResult struct {
	Objects []ObjectInfo `json:"objects"`
}

// PutResult acknowledges a stored (and possibly registered) object.
type PutResult struct {
	Path      string      `json:"path"`
	Size      units.Bytes `json:"size"`
	SHA256    string      `json:"sha256"`
	DatasetID string      `json:"dataset_id,omitempty"`
}

// RemoveResult acknowledges a deletion.
type RemoveResult struct {
	Path      string `json:"path"`
	Removed   bool   `json:"removed"`
	DatasetID string `json:"dataset_id,omitempty"`
}

// DatasetsResult is the /v1/datasets response.
type DatasetsResult struct {
	Datasets []metadata.Dataset `json:"datasets"`
}

// TagRequest tags or untags the dataset at a path.
type TagRequest struct {
	Path string `json:"path"`
	Tag  string `json:"tag"`
}

// IngestObject is one object in a batched ingest: bytes inline
// (base64 over the wire) plus its registration.
type IngestObject struct {
	Path    string            `json:"path"`
	Project string            `json:"project"`
	Data    []byte            `json:"data"`
	Basic   map[string]string `json:"basic,omitempty"`
	Tags    []string          `json:"tags,omitempty"`
}

// IngestRequest is the /v1/ingest body.
type IngestRequest struct {
	Objects []IngestObject `json:"objects"`
}

// IngestObjectResult reports one ingest outcome; Error is empty on
// success. A 200 response with every Error empty means every object
// is stored and registered — durably, when the store journals.
type IngestObjectResult struct {
	Path      string      `json:"path"`
	DatasetID string      `json:"dataset_id,omitempty"`
	Size      units.Bytes `json:"size,omitempty"`
	SHA256    string      `json:"sha256,omitempty"`
	Error     string      `json:"error,omitempty"`
}

// IngestResult is the /v1/ingest response.
type IngestResult struct {
	Results    []IngestObjectResult `json:"results"`
	Registered int                  `json:"registered"`
}

// JobRequest submits a named analysis job over DFS paths.
type JobRequest struct {
	// Job names a server-side job template ("wordcount", ...).
	Job string `json:"job"`
	// Inputs are analysis-cluster (DFS) paths.
	Inputs []string `json:"inputs"`
	// OutputDir is the DFS prefix reducers write under.
	OutputDir string `json:"output_dir"`
	// NumReducers defaults to the template's choice (usually 1).
	NumReducers int `json:"num_reducers,omitempty"`
	// Args parameterize the template (e.g. grep's pattern).
	Args map[string]string `json:"args,omitempty"`
}

// Job states.
const (
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobStatus is the /v1/jobs view of one submitted job.
type JobStatus struct {
	ID          string             `json:"id"`
	Job         string             `json:"job"`
	Tenant      string             `json:"tenant"`
	State       string             `json:"state"`
	Error       string             `json:"error,omitempty"`
	DurationMS  int64              `json:"duration_ms,omitempty"`
	Counters    mapreduce.Counters `json:"counters"`
	OutputFiles []string           `json:"output_files,omitempty"`
}

// JobsResult is the /v1/jobs list response.
type JobsResult struct {
	Jobs []JobStatus `json:"jobs"`
}

// MetricsResult is the /v1/metrics response: the calling tenant's
// own traffic (tenants never see each other's counters).
type MetricsResult struct {
	Tenant   string      `json:"tenant"`
	Stats    TenantStats `json:"stats"`
	Draining bool        `json:"draining"`
}

package workloads

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/adal"
	"repro/internal/dfs"
	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/units"
)

func TestMicroscopyCounts(t *testing.T) {
	cfg := DefaultMicroscopy()
	cfg.Plates = 2
	// 2 plates × 96 wells × 1 fish × 24 images × 2 channels = 9216.
	if got := cfg.TotalImages(); got != 9216 {
		t.Fatalf("images = %d", got)
	}
	if got := cfg.TotalBytes(); got != units.Bytes(9216)*4*units.MB {
		t.Fatalf("bytes = %v", got)
	}
}

func TestMicroscopyProducerEnumeratesAll(t *testing.T) {
	cfg := DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 3
	cfg.ImagesPerFish = 2
	cfg.ImageSize = 128
	cfg.Channels = []string{"488nm"}
	p := NewMicroscopy(cfg)
	paths := map[string]bool{}
	n := 0
	for {
		obj, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if paths[obj.Path] {
			t.Fatalf("duplicate path %s", obj.Path)
		}
		paths[obj.Path] = true
		if obj.Basic["wavelength"] != "488nm" {
			t.Fatalf("basic = %v", obj.Basic)
		}
		n++
	}
	if n != cfg.TotalImages() {
		t.Fatalf("produced %d, want %d", n, cfg.TotalImages())
	}
}

func TestMicroscopyIngestEndToEnd(t *testing.T) {
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	cfg := DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 4
	cfg.ImageSize = 1024
	pipe := ingest.New(layer, meta, ingest.Config{Workers: 4})
	stats, err := pipe.Run(context.Background(), NewMicroscopy(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Objects) != cfg.TotalImages() {
		t.Fatalf("ingested %d, want %d", stats.Objects, cfg.TotalImages())
	}
	if got := meta.Find(metadata.Query{Tags: []string{"microscopy"}}); len(got) != cfg.TotalImages() {
		t.Fatalf("registered = %d", len(got))
	}
}

func TestFrameReaderDeterministic(t *testing.T) {
	read := func() []byte {
		r := NewFrameReader(1000, 42)
		data, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatal("frame reader not deterministic")
	}
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	r2 := NewFrameReader(1000, 43)
	c, _ := io.ReadAll(r2)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical frames")
	}
}

// Property: FrameReader yields exactly n bytes regardless of buffer
// slicing, and content is independent of read chunking.
func TestFrameReaderChunkingQuick(t *testing.T) {
	f := func(n uint16, chunk uint8) bool {
		size := int64(n%4096) + 1
		step := int(chunk%63) + 1
		whole, _ := io.ReadAll(NewFrameReader(size, 7))
		r := NewFrameReader(size, 7)
		var parts []byte
		buf := make([]byte, step)
		for {
			k, err := r.Read(buf)
			parts = append(parts, buf[:k]...)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
		}
		return bytes.Equal(whole, parts)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGenomeAndReads(t *testing.T) {
	g := GenerateGenome(10_000, 5)
	if len(g) != 10_000 {
		t.Fatalf("genome len = %d", len(g))
	}
	for _, b := range g {
		if b != 'A' && b != 'C' && b != 'G' && b != 'T' {
			t.Fatalf("bad base %c", b)
		}
	}
	reads := GenerateReads(g, ReadsConfig{ReadLen: 50, Coverage: 10, ErrorRate: 0.01, Seed: 6})
	lines := bytes.Count(reads, []byte("\n"))
	want := int(10.0 * 10_000 / 50)
	if lines != want {
		t.Fatalf("reads = %d, want %d", lines, want)
	}
	// Zero error rate: every read matches the genome at its position.
	clean := GenerateReads(g, ReadsConfig{ReadLen: 50, Coverage: 2, ErrorRate: 0, Seed: 7})
	for _, line := range strings.Split(strings.TrimSpace(string(clean)), "\n") {
		parts := strings.Split(line, "\t")
		pos, _ := strconv.Atoi(parts[1])
		if string(g[pos:pos+50]) != parts[2] {
			t.Fatalf("read at %d does not match genome", pos)
		}
	}
}

func mrCluster(t *testing.T, blockSize units.Bytes) *dfs.Cluster {
	t.Helper()
	c := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: 2, Seed: 3})
	for i := 0; i < 4; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%d", i), fmt.Sprintf("rack%d", i%2), units.GiB); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestKMerCountingJob(t *testing.T) {
	g := GenerateGenome(2000, 5)
	reads := GenerateReads(g, ReadsConfig{ReadLen: 40, Coverage: 5, ErrorRate: 0, Seed: 6})
	c := mrCluster(t, 4096)
	if err := c.WriteFile("/dna/reads", "", reads); err != nil {
		t.Fatal(err)
	}
	k := 8
	res, err := mapreduce.Run(c, mapreduce.Config{
		Name:   "kmer-count",
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/kmers",
		Mapper: KMerMapper(k), Reducer: SumReducer, Combiner: SumReducer,
		NumReducers: 2, Locality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mapreduce.ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	// Total k-mer occurrences = sum over reads of (readLen - k + 1).
	nReads := int(5.0 * 2000 / 40)
	wantTotal := nReads * (40 - k + 1)
	total := 0
	for kmer, vals := range out {
		if len(kmer) != k {
			t.Fatalf("bad k-mer %q", kmer)
		}
		n, _ := strconv.Atoi(vals[0])
		total += n
	}
	if total != wantTotal {
		t.Fatalf("k-mer total = %d, want %d", total, wantTotal)
	}
}

func TestCoverageJob(t *testing.T) {
	g := GenerateGenome(1000, 5)
	reads := GenerateReads(g, ReadsConfig{ReadLen: 50, Coverage: 4, ErrorRate: 0, Seed: 6})
	c := mrCluster(t, 4096)
	if err := c.WriteFile("/dna/reads", "", reads); err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/cov",
		Mapper: CoverageMapper(100), Reducer: SumReducer, Combiner: SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(c, res.OutputFiles)
	// Total covered positions = nReads × readLen.
	nReads := int(4.0 * 1000 / 50)
	want := nReads * 50
	total := 0
	for _, vals := range out {
		n, _ := strconv.Atoi(vals[0])
		total += n
	}
	if total != want {
		t.Fatalf("coverage total = %d, want %d", total, want)
	}
}

func TestMIPJobMatchesSequential(t *testing.T) {
	cfg := VolumeConfig{Width: 32, Height: 16, Depth: 10, Seed: 9}
	// Sequential reference MIP.
	ref := make([]byte, cfg.Width*cfg.Height)
	var volume []byte
	for z := 0; z < cfg.Depth; z++ {
		slab := cfg.GenerateSlab(z)
		volume = append(volume, slab...)
		for i, b := range slab {
			if b > ref[i] {
				ref[i] = b
			}
		}
	}
	// MR MIP: block size = slab size so each split is one slab.
	c := mrCluster(t, cfg.SlabBytes())
	if err := c.WriteFile("/vol/raw", "", volume); err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/vol/raw"}, OutputDir: "/vol/mip",
		Mapper: MIPMapper(cfg), Reducer: MIPReducer,
		Format: mapreduce.WholeSplitInput, Locality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mapreduce.ReadTextOutput(c, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != cfg.Height {
		t.Fatalf("rows = %d, want %d", len(out), cfg.Height)
	}
	for y := 0; y < cfg.Height; y++ {
		got := out[fmt.Sprintf("row-%05d", y)][0]
		want := string(ref[y*cfg.Width : (y+1)*cfg.Width])
		if got != want {
			t.Fatalf("MIP row %d differs from sequential reference", y)
		}
	}
}

func TestKatrinHistogramJob(t *testing.T) {
	events := KatrinRun(5000, 11)
	c := mrCluster(t, 8192)
	if err := c.WriteFile("/katrin/run1", "", events); err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/katrin/run1"}, OutputDir: "/katrin/hist",
		Mapper: PixelHistogramMapper, Reducer: SumReducer, Combiner: SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(c, res.OutputFiles)
	total := 0
	for pixel, vals := range out {
		if !strings.HasPrefix(pixel, "pixel-") {
			t.Fatalf("bad key %q", pixel)
		}
		n, _ := strconv.Atoi(vals[0])
		total += n
	}
	if total != 5000 {
		t.Fatalf("histogram total = %d", total)
	}
}

func TestEnergyBands(t *testing.T) {
	events := KatrinRun(1000, 11)
	c := mrCluster(t, 8192)
	if err := c.WriteFile("/katrin/run2", "", events); err != nil {
		t.Fatal(err)
	}
	res, err := mapreduce.Run(c, mapreduce.Config{
		Inputs: []string{"/katrin/run2"}, OutputDir: "/katrin/bands",
		Mapper: EnergyBandMapper, Reducer: SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(c, res.OutputFiles)
	total := 0
	for _, vals := range out {
		n, _ := strconv.Atoi(vals[0])
		total += n
	}
	if total != 1000 {
		t.Fatalf("band total = %d", total)
	}
}

func TestClimateGrid(t *testing.T) {
	grid := ClimateGrid(10, 20, 3)
	lines := bytes.Count(grid, []byte("\n"))
	if lines != 200 {
		t.Fatalf("cells = %d", lines)
	}
	if !bytes.Equal(grid, ClimateGrid(10, 20, 3)) {
		t.Fatal("climate grid not deterministic")
	}
}

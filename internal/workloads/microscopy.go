// Package workloads generates the scientific data streams the paper
// names: zebrafish high-throughput microscopy (slide 5), DNA
// sequencing reads and 3D biomedical volumes (slide 13), KATRIN event
// data and climate grids (slide 14). All generators are deterministic
// for a seed, so experiments replay identically.
package workloads

import (
	"fmt"
	"io"

	"repro/internal/ingest"
	"repro/internal/units"
)

// MicroscopyConfig describes a high-throughput microscopy campaign at
// the Institute of Toxicology and Genetics: robots move samples under
// automated microscopes, producing high-resolution images over
// varying parameters (focus point, wavelength, ...) — 24 images per
// fish, 4 MB each, ≈200k images/day.
type MicroscopyConfig struct {
	Project       string
	PathPrefix    string // federated prefix for stored images
	Plates        int
	WellsPerPlate int         // 96-well plates
	FishPerWell   int         // embryos per well
	ImagesPerFish int         // paper: 24
	ImageSize     units.Bytes // paper: 4 MB
	Channels      []string    // wavelengths
	Seed          int64
}

// DefaultMicroscopy returns the paper's parameters (one plate by
// default; callers scale Plates for volume).
func DefaultMicroscopy() MicroscopyConfig {
	return MicroscopyConfig{
		Project:       "zebrafish",
		PathPrefix:    "/ddn/itg",
		Plates:        1,
		WellsPerPlate: 96,
		FishPerWell:   1,
		ImagesPerFish: 24,
		ImageSize:     4 * units.MB,
		Channels:      []string{"488nm", "561nm"},
		Seed:          1,
	}
}

// TotalImages returns the number of images a campaign produces.
func (c MicroscopyConfig) TotalImages() int {
	n := c.Plates * c.WellsPerPlate * c.FishPerWell * c.ImagesPerFish
	if len(c.Channels) > 0 {
		n *= len(c.Channels)
	}
	return n
}

// TotalBytes returns the campaign's raw volume.
func (c MicroscopyConfig) TotalBytes() units.Bytes {
	return units.Bytes(c.TotalImages()) * c.ImageSize
}

// MicroscopyProducer yields one ingest object per image, in plate /
// well / fish / image / channel order. It implements ingest.Producer.
type MicroscopyProducer struct {
	cfg   MicroscopyConfig
	plate int
	well  int
	fish  int
	img   int
	chn   int
}

// NewMicroscopy creates a producer for a campaign.
func NewMicroscopy(cfg MicroscopyConfig) *MicroscopyProducer {
	if len(cfg.Channels) == 0 {
		cfg.Channels = []string{"488nm"}
	}
	return &MicroscopyProducer{cfg: cfg}
}

// Next implements ingest.Producer.
func (m *MicroscopyProducer) Next() (*ingest.Object, error) {
	c := m.cfg
	if m.plate >= c.Plates {
		return nil, io.EOF
	}
	path := fmt.Sprintf("%s/plate%03d/well%02d/fish%d/img%02d_%s.raw",
		c.PathPrefix, m.plate, m.well, m.fish, m.img, c.Channels[m.chn])
	seed := c.Seed ^ int64(m.plate)<<40 ^ int64(m.well)<<28 ^
		int64(m.fish)<<20 ^ int64(m.img)<<8 ^ int64(m.chn)
	obj := &ingest.Object{
		Project: c.Project,
		Path:    path,
		Data:    NewFrameReader(int64(c.ImageSize), seed),
		Basic: map[string]string{
			"plate":      fmt.Sprintf("%03d", m.plate),
			"well":       fmt.Sprintf("%02d", m.well),
			"fish":       fmt.Sprint(m.fish),
			"image":      fmt.Sprintf("%02d", m.img),
			"wavelength": c.Channels[m.chn],
			"instrument": "htm-olympus-01",
		},
		Tags: []string{"raw", "microscopy"},
	}
	// Advance odometer: channel, image, fish, well, plate.
	m.chn++
	if m.chn >= len(c.Channels) {
		m.chn = 0
		m.img++
	}
	if m.img >= c.ImagesPerFish {
		m.img = 0
		m.fish++
	}
	if m.fish >= c.FishPerWell {
		m.fish = 0
		m.well++
	}
	if m.well >= c.WellsPerPlate {
		m.well = 0
		m.plate++
	}
	return obj, nil
}

// FrameReader streams deterministic pseudo-image bytes without
// holding the frame in memory: a 4 MB microscope frame costs no
// allocation beyond the reader. The generator is xorshift64*, cheap
// enough that ingest benchmarks measure the pipeline, not the source.
// The byte stream is a pure function of (seed, position): chunked
// reads see identical content regardless of buffer sizes.
type FrameReader struct {
	remaining int64
	state     uint64
	word      [8]byte
	wordPos   int // 8 = word exhausted, generate the next
}

// NewFrameReader creates a reader of n pseudo-random bytes.
func NewFrameReader(n int64, seed int64) *FrameReader {
	s := uint64(seed)
	if s == 0 {
		s = 0x9E3779B97F4A7C15
	}
	return &FrameReader{remaining: n, state: s, wordPos: 8}
}

// Read implements io.Reader.
func (f *FrameReader) Read(p []byte) (int, error) {
	if f.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > f.remaining {
		n = int(f.remaining)
	}
	for i := 0; i < n; i++ {
		if f.wordPos == 8 {
			f.state ^= f.state >> 12
			f.state ^= f.state << 25
			f.state ^= f.state >> 27
			v := f.state * 0x2545F4914F6CDD1D
			for j := 0; j < 8; j++ {
				f.word[j] = byte(v >> (8 * j))
			}
			f.wordPos = 0
		}
		p[i] = f.word[f.wordPos]
		f.wordPos++
	}
	f.remaining -= int64(n)
	return n, nil
}

package workloads

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
	"repro/internal/units"
)

// The 3D visualization workload reproduces "3D biomedical data
// visualization: processing 1 TB dataset in 20 min" (slide 13): a
// voxel volume is stored slab-by-slab in the DFS, and a MapReduce job
// computes a maximum-intensity projection (MIP) — the standard
// visualization primitive for volumetric microscopy — by projecting
// each slab in a map task and folding the partial projections in the
// reducer.

// VolumeConfig describes a synthetic volume of Depth slabs, each
// Height×Width voxels of one byte.
type VolumeConfig struct {
	Width, Height, Depth int
	Seed                 int64
}

// SlabBytes returns the size of one z-slab.
func (v VolumeConfig) SlabBytes() units.Bytes {
	return units.Bytes(v.Width * v.Height)
}

// TotalBytes returns the volume's raw size.
func (v VolumeConfig) TotalBytes() units.Bytes {
	return units.Bytes(v.Width*v.Height) * units.Bytes(v.Depth)
}

// GenerateSlab returns slab z as deterministic voxel bytes.
func (v VolumeConfig) GenerateSlab(z int) []byte {
	r := NewFrameReader(int64(v.SlabBytes()), v.Seed^int64(z)<<13)
	buf := make([]byte, v.SlabBytes())
	if _, err := r.Read(buf); err != nil {
		panic("workloads: slab generation: " + err.Error())
	}
	return buf
}

// MIPMapper projects one slab (one WholeSplitInput record when the
// DFS block size equals SlabBytes) to its per-pixel maxima, emitting
// the projected plane in hex rows keyed by row index so the reduce
// phase can fold planes without holding the full volume.
func MIPMapper(cfg VolumeConfig) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
		if len(value)%cfg.Width != 0 {
			return fmt.Errorf("workloads: slab of %d bytes not a multiple of width %d", len(value), cfg.Width)
		}
		rows := len(value) / cfg.Width
		if rows > cfg.Height {
			rows = cfg.Height
		}
		for y := 0; y < rows; y++ {
			emit(fmt.Sprintf("row-%05d", y), value[y*cfg.Width:(y+1)*cfg.Width])
		}
		return nil
	})
}

// MIPReducer folds all planes' rows with voxel-wise max, emitting the
// final projection row.
var MIPReducer = mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
	if len(values) == 0 {
		return nil
	}
	out := make([]byte, len(values[0]))
	copy(out, values[0])
	for _, v := range values[1:] {
		if len(v) != len(out) {
			return fmt.Errorf("workloads: row length mismatch %d vs %d", len(v), len(out))
		}
		for i, b := range v {
			if b > out[i] {
				out[i] = b
			}
		}
	}
	emit(key, out)
	return nil
})

// KATRIN and climate generators round out the "additional communities
// integrated in 2011" (slide 14).

// KatrinEventLine renders one synthetic KATRIN spectrometer event:
// "ts<N>\tpixel\tenergy_eV". Events stream into ingest objects or MR
// text inputs.
func KatrinEventLine(i int, seed int64) string {
	s := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	s ^= s >> 33
	s *= 0xFF51AFD7ED558CCD
	s ^= s >> 33
	pixel := s % 148                 // KATRIN focal-plane detector has 148 pixels
	energy := 18000 + int(s>>8%1200) // around the tritium endpoint, eV
	return fmt.Sprintf("ts%09d\t%03d\t%d", i, pixel, energy)
}

// KatrinRun renders n events, one per line.
func KatrinRun(n int, seed int64) []byte {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(KatrinEventLine(i, seed))
		sb.WriteByte('\n')
	}
	return []byte(sb.String())
}

// PixelHistogramMapper counts events per detector pixel.
var PixelHistogramMapper = mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
	parts := strings.Split(string(value), "\t")
	if len(parts) != 3 {
		return fmt.Errorf("workloads: malformed katrin event %q", value)
	}
	emit("pixel-"+parts[1], one)
	return nil
})

// EnergyBandMapper counts events per 100 eV energy band.
var EnergyBandMapper = mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
	parts := strings.Split(string(value), "\t")
	if len(parts) != 3 {
		return fmt.Errorf("workloads: malformed katrin event %q", value)
	}
	ev, err := strconv.Atoi(parts[2])
	if err != nil {
		return err
	}
	emit(fmt.Sprintf("band-%05d", ev/100*100), one)
	return nil
})

// ClimateGrid renders a lat×lon grid of one float per cell as CSV
// lines "lat,lon,value" — the archival-quality gridded products of
// the meteorology community (slide 14).
func ClimateGrid(lat, lon int, seed int64) []byte {
	var sb strings.Builder
	s := uint64(seed)
	for i := 0; i < lat; i++ {
		for j := 0; j < lon; j++ {
			s ^= s >> 12
			s ^= s << 25
			s ^= s >> 27
			v := float64(s%40000)/100 - 100 // -100.00 .. +300.00
			fmt.Fprintf(&sb, "%d,%d,%.2f\n", i, j, v)
		}
	}
	return []byte(sb.String())
}

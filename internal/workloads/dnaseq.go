package workloads

import (
	"bytes"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/mapreduce"
)

// The DNA workload reproduces "DNA sequencing and reconstruction
// using Hadoop tools" (slide 13): a synthetic genome is sampled into
// error-bearing short reads, and MapReduce jobs count k-mers and
// build a coverage profile — the core primitives of 2011-era
// sequencing pipelines (k-mer spectra for error correction, coverage
// for assembly validation).

var bases = []byte("ACGT")

// GenerateGenome returns a deterministic pseudo-genome of length n.
func GenerateGenome(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	g := make([]byte, n)
	for i := range g {
		g[i] = bases[rng.Intn(4)]
	}
	return g
}

// ReadsConfig controls read sampling.
type ReadsConfig struct {
	ReadLen   int     // bases per read
	Coverage  float64 // mean genome coverage
	ErrorRate float64 // per-base substitution probability
	Seed      int64
}

// GenerateReads samples reads uniformly over the genome, one per
// line: "<id>\t<position>\t<sequence>". Position is included so tests
// can verify coverage accounting.
func GenerateReads(genome []byte, cfg ReadsConfig) []byte {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nReads := int(cfg.Coverage * float64(len(genome)) / float64(cfg.ReadLen))
	var buf bytes.Buffer
	for i := 0; i < nReads; i++ {
		pos := rng.Intn(len(genome) - cfg.ReadLen + 1)
		read := make([]byte, cfg.ReadLen)
		copy(read, genome[pos:pos+cfg.ReadLen])
		for j := range read {
			if rng.Float64() < cfg.ErrorRate {
				read[j] = bases[rng.Intn(4)]
			}
		}
		fmt.Fprintf(&buf, "r%06d\t%d\t%s\n", i, pos, read)
	}
	return buf.Bytes()
}

// KMerMapper emits every k-mer of each read with count 1; combined
// with SumReducer it produces the k-mer spectrum.
func KMerMapper(k int) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
		parts := strings.Split(string(value), "\t")
		if len(parts) != 3 {
			return fmt.Errorf("dnaseq: malformed read line %q", value)
		}
		seq := parts[2]
		for i := 0; i+k <= len(seq); i++ {
			emit(seq[i:i+k], one)
		}
		return nil
	})
}

var one = []byte("1")

// CoverageMapper emits one count per genome position covered by each
// read, keyed by position bucket (bucketSize positions per key) to
// keep reducer fan-in bounded.
func CoverageMapper(bucketSize int) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(_ string, value []byte, emit mapreduce.Emit) error {
		parts := strings.Split(string(value), "\t")
		if len(parts) != 3 {
			return fmt.Errorf("dnaseq: malformed read line %q", value)
		}
		pos, err := strconv.Atoi(parts[1])
		if err != nil {
			return err
		}
		readLen := len(parts[2])
		for p := pos; p < pos+readLen; p++ {
			emit(fmt.Sprintf("%08d", p/bucketSize), one)
		}
		return nil
	})
}

// SumReducer adds integer counts, shared by both DNA jobs.
var SumReducer = mapreduce.ReducerFunc(func(key string, values [][]byte, emit mapreduce.Emit) error {
	sum := 0
	for _, v := range values {
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		sum += n
	}
	emit(key, []byte(strconv.Itoa(sum)))
	return nil
})

// StreamSumReducer is SumReducer on the streaming reduce interface:
// it folds each count as it comes off the shuffle merge, so a group
// of any cardinality costs O(1) reducer memory — the shape to use
// with Config.ShuffleMemory on high-fan-in keys.
var StreamSumReducer = mapreduce.StreamReducerFunc(func(key string, values *mapreduce.Values, emit mapreduce.Emit) error {
	sum := 0
	for {
		v, ok := values.Next()
		if !ok {
			break
		}
		n, err := strconv.Atoi(string(v))
		if err != nil {
			return err
		}
		sum += n
	}
	if err := values.Err(); err != nil {
		return err
	}
	emit(key, []byte(strconv.Itoa(sum)))
	return nil
})

package facility

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/objectstore"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Failure-injection integration tests: the behaviours that make a
// facility trustworthy are the ones under faults.

func TestMapReduceSurvivesDatanodeLoss(t *testing.T) {
	f, err := New(Options{DFSNodes: 8, DFSBlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	var corpus strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&corpus, "embryo fish record%04d\n", i)
	}
	if err := f.DFS.WriteFile("/corpus", "dn000", []byte(corpus.String())); err != nil {
		t.Fatal(err)
	}
	// Kill the node holding first replicas before the job runs: the
	// namenode re-replicates and the job reads surviving copies.
	if _, err := f.DFS.KillNode("dn000"); err != nil {
		t.Fatal(err)
	}
	res, err := f.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(string(v)) {
				emit(w, []byte("1"))
			}
			return nil
		}),
		Reducer:  workloads.SumReducer,
		Locality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := mapreduce.ReadTextOutput(f.DFS, res.OutputFiles)
	if err != nil {
		t.Fatal(err)
	}
	if out["embryo"][0] != "400" || out["fish"][0] != "400" {
		t.Fatalf("output after node loss = %v", out)
	}
}

func TestScrubAfterCorruptionKeepsFacilityData(t *testing.T) {
	f, err := New(Options{DFSNodes: 6, DFSBlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	data := []byte(strings.Repeat("precious bytes ", 200))
	if err := f.DFS.WriteFile("/keep", "dn001", data); err != nil {
		t.Fatal(err)
	}
	for _, id := range f.DFS.BlockIDsOn("dn001") {
		f.DFS.CorruptReplica("dn001", id)
	}
	rep := f.DFS.Scrub()
	if rep.CorruptDropped == 0 || rep.Unrecoverable != 0 {
		t.Fatalf("scrub = %+v", rep)
	}
	got, err := f.DFS.ReadFile("/keep", "")
	if err != nil || string(got) != string(data) {
		t.Fatalf("data lost: %v", err)
	}
}

func TestIngestIntoObjectStoreMount(t *testing.T) {
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	cfg := workloads.DefaultMicroscopy()
	cfg.PathPrefix = "/s3/itg" // straight into the slide-14 object store
	cfg.Plates = 1
	cfg.WellsPerPlate = 2
	cfg.ImagesPerFish = 2
	cfg.ImageSize = 1024
	cfg.Channels = []string{"488nm"}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 2})
	stats, err := pipe.Run(context.Background(), workloads.NewMicroscopy(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Objects) != cfg.TotalImages() {
		t.Fatalf("ingested %d", stats.Objects)
	}
	// Objects live in the bucket with ETags; metadata checksums match
	// the store's own content hash (both SHA-256 of the bytes).
	infos, err := f.ObjectStore.List("lsdf", objectstore.ListOptions{Prefix: "itg/"})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != cfg.TotalImages() {
		t.Fatalf("bucket holds %d objects", len(infos))
	}
	for _, ds := range f.Meta.Find(metadata.Query{Project: "zebrafish"}) {
		key := strings.TrimPrefix(ds.Path, "/s3/")
		head, err := f.ObjectStore.Head("lsdf", key)
		if err != nil {
			t.Fatalf("object %s: %v", key, err)
		}
		if head.ETag != ds.Checksum {
			t.Fatalf("etag/checksum mismatch for %s", key)
		}
		if head.Size != units.Bytes(1024) {
			t.Fatalf("size = %v", head.Size)
		}
	}
	// The DataBrowser sees the object store like any mount.
	entries, err := f.Browser.List("/s3/itg")
	if err != nil || len(entries) != cfg.TotalImages() {
		t.Fatalf("browse = %d entries, err %v", len(entries), err)
	}
	if !entries[0].Registered {
		t.Fatal("object-store entries not joined with metadata")
	}
	// Preview works through the adapter too.
	head, err := f.Browser.Preview(entries[0].Path, 16)
	if err != nil || len(head) != 16 {
		t.Fatalf("preview: %v", err)
	}
}

package facility

import (
	"context"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func TestFacilityAssembly(t *testing.T) {
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	mounts := f.Layer.Mounts()
	if len(mounts) != 5 { // ddn, ibm, archive, hdfs, s3
		t.Fatalf("mounts = %v", mounts)
	}
	if got := len(f.DFS.DataNodes()); got != 8 {
		t.Fatalf("dfs nodes = %d", got)
	}
}

func TestFacilityEndToEndLifecycle(t *testing.T) {
	// The paper's full loop: ingest -> register -> tag -> workflow ->
	// provenance -> rules replicate, all through one facility.
	f, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Rule: every zebrafish object is replicated into the archive.
	f.Rules.Add(rules.Rule{
		Name:      "archive-raw",
		Event:     rules.OnCreate,
		Condition: rules.ProjectIs("zebrafish"),
		Actions:   []rules.Action{rules.Replicate("/archive")},
	})
	// Trigger: tagging analyze runs a small workflow.
	wf := workflow.New("measure")
	wf.MustAddNode("size", workflow.ActorFunc(func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
		info, err := ctx.Layer.Stat(in["dataset.path"].(string))
		if err != nil {
			return nil, err
		}
		return workflow.Values{"bytes": fmt.Sprint(int64(info.Size))}, nil
	}))
	f.Orchestrator.AddTrigger(workflow.Trigger{Tag: "analyze", Workflow: wf})

	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 2
	cfg.ImagesPerFish = 3
	cfg.ImageSize = 2048
	cfg.Channels = []string{"488nm"}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4})
	stats, err := pipe.Run(context.Background(), workloads.NewMicroscopy(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if int(stats.Objects) != cfg.TotalImages() {
		t.Fatalf("ingested %d", stats.Objects)
	}

	// Rules replicated everything.
	replicas, err := f.Layer.List("/archive/ddn/itg")
	if err != nil {
		t.Fatal(err)
	}
	if len(replicas) != cfg.TotalImages() {
		t.Fatalf("replicas = %d, want %d", len(replicas), cfg.TotalImages())
	}

	// Browse and trigger analysis through the DataBrowser.
	entries, err := f.Browser.List("/ddn/itg")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != cfg.TotalImages() || !entries[0].Registered {
		t.Fatalf("browse = %d entries", len(entries))
	}
	if err := f.Browser.Tag(entries[0].Path, "analyze"); err != nil {
		t.Fatal(err)
	}
	ds, err := f.Browser.Dataset(entries[0].Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Processings) != 1 || ds.Processings[0].Results["bytes"] != "2048" {
		t.Fatalf("provenance = %+v", ds.Processings)
	}
}

func TestFacilityMapReduceOnHDFSMount(t *testing.T) {
	f, err := New(Options{DFSBlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Write a corpus through ADAL into the HDFS mount, then run MR on
	// it natively.
	w, err := f.Layer.Create("/hdfs/corpus")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		fmt.Fprintf(w, "embryo fish embryo line%d\n", i)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := f.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, word := range strings.Fields(string(v)) {
				emit(word, []byte("1"))
			}
			return nil
		}),
		Reducer:  workloads.SumReducer,
		Locality: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := mapreduce.ReadTextOutput(f.DFS, res.OutputFiles)
	if out["embryo"][0] != "200" || out["fish"][0] != "100" {
		t.Fatalf("wordcount = %v", out)
	}
	// The MR output is visible through the ADAL mount as well.
	if _, err := f.Layer.Stat("/hdfs/out/part-00000"); err != nil {
		t.Fatal(err)
	}
}

// Options.ShuffleMemory is the facility-wide spill default: jobs that
// don't set their own budget inherit it and run the external shuffle.
func TestFacilityShuffleMemoryDefault(t *testing.T) {
	f, err := New(Options{DFSBlockSize: 256, ShuffleMemory: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var corpus strings.Builder
	for i := 0; i < 200; i++ {
		fmt.Fprintf(&corpus, "spill test words line%d\n", i%13)
	}
	if err := f.DFS.WriteFile("/corpus", "", []byte(corpus.String())); err != nil {
		t.Fatal(err)
	}
	res, err := f.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, word := range strings.Fields(string(v)) {
				emit(word, []byte("1"))
			}
			return nil
		}),
		Reducer: workloads.SumReducer,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.SpillRuns == 0 {
		t.Fatalf("facility ShuffleMemory default not inherited: %+v", res.Counters)
	}
	out, _ := mapreduce.ReadTextOutput(f.DFS, res.OutputFiles)
	if out["spill"][0] != "200" {
		t.Fatalf("wordcount = %v", out)
	}
}

func TestScenarioIngestSustains2TBPerDay(t *testing.T) {
	s, err := NewScenario(ScenarioConfig{})
	if err != nil {
		t.Fatal(err)
	}
	stream := &IngestStream{
		Name: "zebrafish-htm", Src: "daq", Dst: "ddn",
		Size: 4 * units.MB, Rate: units.PerDay(2 * units.TB),
	}
	res := s.RunIngest([]*IngestStream{stream}, 24*time.Hour)
	r := res["zebrafish-htm"]
	if r.Rejected != 0 {
		t.Fatalf("rejected = %d", r.Rejected)
	}
	// A day at 2 TB/day of 4 MB objects = 500k objects, 2 TB.
	if r.Objects < 490_000 || r.Objects > 510_000 {
		t.Fatalf("objects = %d, want ~500k", r.Objects)
	}
	days := float64(r.Bytes) / float64(2*units.TB)
	if days < 0.97 || days > 1.03 {
		t.Fatalf("ingested %v, want ~2TB", r.Bytes.SI())
	}
	if s.DDN.Used() != r.Bytes {
		t.Fatalf("array accounting: used %v vs ingested %v", s.DDN.Used(), r.Bytes)
	}
}

func TestScenarioFillTriggersHSM(t *testing.T) {
	cfg := ScenarioConfig{
		DDNCapacity: 10 * units.TB,
		IBMCapacity: 10 * units.TB,
	}
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the IBM array past its watermark via HSM-managed files.
	for i := 0; i < 95; i++ {
		if err := s.HSM.Store(fmt.Sprintf("run-%03d", i), 100*units.GB); err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
	}
	s.Eng.RunUntil(48 * time.Hour)
	st := s.HSM.Stats()
	if st.MigratedFiles == 0 {
		t.Fatal("HSM never migrated despite 95% fill")
	}
	if st.DiskUtilization > 0.75 {
		t.Fatalf("disk still at %.2f after migration", st.DiskUtilization)
	}
	if s.Tape.Stats().BytesIn == 0 {
		t.Fatal("tape holds nothing")
	}
}

func TestTransferStudyMatchesPaper(t *testing.T) {
	results := TransferStudy([]TransferCase{
		{Label: "ideal", Bytes: units.PB, Efficiency: 1.0},
		{Label: "realistic", Bytes: units.PB, Efficiency: 0.62},
		{Label: "shared-4", Bytes: units.PB, Efficiency: 1.0, Parallel: 4},
	}, units.Gbps(10))
	if math.Abs(results[0].Days-9.26) > 0.1 {
		t.Fatalf("ideal = %.2f days, want 9.26", results[0].Days)
	}
	if results[1].Days < 14 || results[1].Days > 16 {
		t.Fatalf("realistic = %.2f days, want ~15 (the paper's figure)", results[1].Days)
	}
	if math.Abs(results[2].Days-4*9.26) > 0.5 {
		t.Fatalf("shared-4 = %.2f days, want ~37", results[2].Days)
	}
}

func TestClusterModel(t *testing.T) {
	m := LSDFCluster()
	// The paper's claim: 1 TB in about 20 minutes on 60 nodes.
	minutes := m.TimeFor(units.TB, 60).Minutes()
	if minutes < 18 || minutes > 22 {
		t.Fatalf("1TB on 60 nodes = %.1f min, want ~20", minutes)
	}
	// Speedup monotone and sublinear.
	prev := 0.0
	for _, n := range []int{1, 2, 4, 8, 16, 32, 60} {
		sp := m.Speedup(n)
		if sp <= prev {
			t.Fatalf("speedup not monotone at %d nodes", n)
		}
		if sp > float64(n) {
			t.Fatalf("superlinear speedup at %d nodes", n)
		}
		prev = sp
	}
}

func TestClusterModelCalibration(t *testing.T) {
	m := ClusterModel{Nodes: 60, PerNodeRate: units.Rate(1), SerialFraction: 0.02}
	// Measured: 8 nodes processed 1 GiB in 10 s.
	m.Calibrate(units.GiB, 10*time.Second, 8)
	got := m.TimeFor(units.GiB, 8)
	if math.Abs(got.Seconds()-10) > 0.01 {
		t.Fatalf("calibrated model disagrees with its own sample: %v", got)
	}
}

func TestGrowthReaches6PBIn2012(t *testing.T) {
	points := RunGrowth(LSDFGrowth())
	if len(points) == 0 {
		t.Fatal("no growth points")
	}
	var installed6PB *GrowthPoint
	for i := range points {
		if points[i].Installed >= 6*units.PB {
			installed6PB = &points[i]
			break
		}
	}
	if installed6PB == nil {
		t.Fatal("capacity never reached 6 PB")
	}
	if y := installed6PB.When.Year(); y != 2012 {
		t.Fatalf("6 PB installed in %d, want 2012 (slide 14)", y)
	}
	// Ingest approaches 6 PB/year by 2014.
	last := points[len(points)-1]
	if last.When.Year() < 2014 {
		t.Fatalf("horizon too short: ends %v", last.When)
	}
	peta := float64(last.IngestPerYear) / float64(units.PB)
	if peta < 5 || peta > 7 {
		t.Fatalf("2014 ingest = %.2f PB/year, want ~6", peta)
	}
	// Stored volume is monotone.
	for i := 1; i < len(points); i++ {
		if points[i].Stored < points[i-1].Stored {
			t.Fatal("stored volume decreased")
		}
	}
}

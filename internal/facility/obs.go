package facility

// registerObs points the facility's metrics registry at every
// subsystem's existing counters. The samplers read at scrape time —
// CounterFunc/GaugeFunc wrap the atomics and locked snapshots the
// subsystems already maintain — so the facility's hot paths pay
// nothing for facility-wide exposition.
func (f *Facility) registerObs() {
	reg := f.Obs
	reg.RegisterRuntimeMetrics()

	// Analysis cluster (HDFS model). Each sampler snapshots the
	// cluster report; scrapes are rare enough that the repeated
	// report cost does not matter.
	reg.GaugeFunc("lsdf_dfs_nodes", "Configured datanodes.", func() int64 { return int64(f.DFS.Report().Nodes) })
	reg.GaugeFunc("lsdf_dfs_live_nodes", "Datanodes currently alive.", func() int64 { return int64(f.DFS.Report().LiveNodes) })
	reg.GaugeFunc("lsdf_dfs_capacity_bytes", "Total datanode capacity.", func() int64 { return int64(f.DFS.Report().Capacity) })
	reg.GaugeFunc("lsdf_dfs_used_bytes", "Bytes stored across datanodes.", func() int64 { return int64(f.DFS.Report().Used) })
	reg.GaugeFunc("lsdf_dfs_files", "Files in the namespace.", func() int64 { return int64(f.DFS.Report().Files) })
	reg.GaugeFunc("lsdf_dfs_blocks", "Blocks in the namespace.", func() int64 { return int64(f.DFS.Report().Blocks) })
	reg.CounterFunc("lsdf_dfs_local_reads_total", "Block reads served by a replica on the reader's node.", func() int64 { return int64(f.DFS.Report().LocalReads) })
	reg.CounterFunc("lsdf_dfs_remote_reads_total", "Block reads that crossed the network.", func() int64 { return int64(f.DFS.Report().RemoteReads) })
	reg.CounterFunc("lsdf_dfs_bytes_read_total", "Bytes read from the cluster.", func() int64 { return int64(f.DFS.Report().BytesRead) })
	reg.CounterFunc("lsdf_dfs_bytes_written_total", "Bytes written to the cluster.", func() int64 { return int64(f.DFS.Report().BytesWritten) })
	reg.CounterFunc("lsdf_dfs_rereplicated_total", "Blocks re-replicated after node failures.", func() int64 { return int64(f.DFS.Report().ReReplicated) })

	// Metadata durability (per-shard WAL + snapshots).
	reg.GaugeFunc("lsdf_meta_durable", "1 when mutations are journaled to a WAL.", func() int64 {
		if f.Meta.Durable() {
			return 1
		}
		return 0
	})
	reg.CounterFunc("lsdf_meta_snapshots_total", "Compacted WAL snapshots written since open.", f.Meta.Snapshots)
	reg.CounterFunc("lsdf_meta_wal_errors_total", "WAL append/sync failures.", f.Meta.WALErrors)

	// Hot-set read cache (nil unless enabled). The fill-latency
	// histogram lsdf_cache_fill_ns is registered by the cache itself
	// through readcache.Config.Obs.
	if c := f.ReadCache; c != nil {
		reg.CounterFunc("lsdf_cache_mem_hits_total", "Reads served from the memory tier.", func() int64 { return int64(c.Stats().MemHits) })
		reg.CounterFunc("lsdf_cache_disk_hits_total", "Reads served from the disk tier.", func() int64 { return int64(c.Stats().DiskHits) })
		reg.CounterFunc("lsdf_cache_misses_total", "Reads that fell through to the federation.", func() int64 { return int64(c.Stats().Misses) })
		reg.CounterFunc("lsdf_cache_neg_hits_total", "Lookups answered not-found from the negative set.", func() int64 { return int64(c.Stats().NegHits) })
		reg.CounterFunc("lsdf_cache_fills_total", "Completed miss fills.", func() int64 { return int64(c.Stats().Fills) })
		reg.CounterFunc("lsdf_cache_fill_bytes_total", "Bytes admitted by fills.", func() int64 { return int64(c.Stats().FillBytes) })
		reg.CounterFunc("lsdf_cache_evictions_total", "Entries evicted for budget.", func() int64 { return int64(c.Stats().Evictions) })
		reg.CounterFunc("lsdf_cache_invalidations_total", "Entries dropped by bus invalidation.", func() int64 { return int64(c.Stats().Invalidations) })
		reg.GaugeFunc("lsdf_cache_mem_used_bytes", "Memory-tier bytes in use.", func() int64 { return int64(c.Stats().MemUsed) })
		reg.GaugeFunc("lsdf_cache_mem_budget_bytes", "Memory-tier byte budget.", func() int64 { return int64(c.Stats().MemBudget) })
	}

	// Multi-site replication engine (nil unless Options.Sites).
	if e := f.Replicator; e != nil {
		reg.CounterFunc("lsdf_repl_transfers_total", "Completed inter-site copies.", func() int64 { return int64(e.Stats().Transfers) })
		reg.CounterFunc("lsdf_repl_transfer_bytes_total", "Bytes moved between sites.", func() int64 { return int64(e.Stats().TransferBytes) })
		reg.CounterFunc("lsdf_repl_retries_total", "Replication attempts retried.", func() int64 { return int64(e.Stats().Retries) })
		reg.CounterFunc("lsdf_repl_failures_total", "Replication jobs that exhausted retries.", func() int64 { return int64(e.Stats().Failures) })
		reg.CounterFunc("lsdf_repl_reverifies_total", "Replicas revalidated by checksum alone.", func() int64 { return int64(e.Stats().Reverifies) })
		reg.GaugeFunc("lsdf_repl_pending", "Replication jobs queued or in flight.", func() int64 { return int64(e.Stats().Pending) })
	}

	// Distributed compute plane (nil unless Options.ComputeWorkers).
	if m := f.Compute; m != nil {
		reg.GaugeFunc("lsdf_mr_workers", "Workers ever registered with the master.", func() int64 { return int64(m.Stats().Workers) })
		reg.GaugeFunc("lsdf_mr_live_workers", "Workers within their heartbeat lease.", func() int64 { return int64(m.Stats().LiveWorkers) })
		reg.GaugeFunc("lsdf_mr_jobs", "Jobs ever submitted.", func() int64 { return int64(m.Stats().Jobs) })
		reg.GaugeFunc("lsdf_mr_running_jobs", "Jobs not yet settled.", func() int64 { return int64(m.Stats().RunningJobs) })
		reg.GaugeFunc("lsdf_mr_running_slots", "Task attempts holding worker slots.", func() int64 { return int64(m.Stats().RunningSlots) })
		reg.CounterFunc("lsdf_mr_map_tasks_total", "Map attempts committed.", func() int64 { return m.Stats().MapTasks })
		reg.CounterFunc("lsdf_mr_reduce_tasks_total", "Reduce attempts committed.", func() int64 { return m.Stats().ReduceTasks })
		reg.CounterFunc("lsdf_mr_retries_total", "Task attempts re-run after failure or loss.", func() int64 { return m.Stats().Retries })
		reg.CounterFunc("lsdf_mr_spec_launched_total", "Speculative backup attempts launched.", func() int64 { return m.Stats().SpecLaunched })
		reg.CounterFunc("lsdf_mr_spec_won_total", "Speculative attempts that committed first.", func() int64 { return m.Stats().SpecWon })
		reg.CounterFunc("lsdf_mr_shuffle_bytes_total", "Shuffle bytes merged by reducers.", func() int64 { return m.Stats().ShuffleBytes })
		reg.CounterFunc("lsdf_mr_remote_shuffle_bytes_total", "Shuffle bytes fetched over worker HTTP.", func() int64 { return m.Stats().RemoteBytes })
	}
}

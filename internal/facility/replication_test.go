package facility

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/rules"
)

// TestFacilityMultiSiteReplication wires the whole stack: ingest
// through the mount table registers datasets, the metadata event bus
// drives the replication engine, the DataBrowser reports the replica
// column, and a site outage is invisible to readers.
func TestFacilityMultiSiteReplication(t *testing.T) {
	f, err := New(Options{
		Sites:       []string{"kit", "gridka", "desy"},
		MinReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const objects = 8
	objs := make([]*ingest.Object, objects)
	for i := range objs {
		objs[i] = &ingest.Object{
			Project: "aaa",
			Path:    fmt.Sprintf("/sites/run/%03d", i),
			Data:    bytes.NewReader(bytes.Repeat([]byte{byte(i)}, 16*1024)),
		}
	}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4})
	if _, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: objs}); err != nil {
		t.Fatal(err)
	}
	f.Replicator.Wait()

	for i := 0; i < objects; i++ {
		rel := fmt.Sprintf("/run/%03d", i)
		if n := f.ReplicaCatalog.CountValid(rel); n < 2 {
			t.Fatalf("%s: %d valid replicas, want >= 2", rel, n)
		}
	}

	// The browser's replica column, through the ordinary mount table.
	entry, err := f.Browser.Stat("/sites/run/000")
	if err != nil {
		t.Fatal(err)
	}
	if entry.Replicas < 2 || len(entry.ReplicaSites) != entry.Replicas {
		t.Fatalf("browser entry = %+v, want >= 2 replica sites", entry)
	}
	if !entry.Registered {
		t.Fatalf("ingest did not register %s", entry.Path)
	}

	// Kill the nearest site: reads keep working through the same
	// federated path, and the catalog recovers MinReplicas.
	f.FedSites[0].SetDown(true)
	for i := 0; i < objects; i++ {
		path := fmt.Sprintf("/sites/run/%03d", i)
		r, err := f.Layer.Open(path)
		if err != nil {
			t.Fatalf("read %s during outage: %v", path, err)
		}
		data, err := io.ReadAll(r)
		r.Close()
		if err != nil || len(data) != 16*1024 {
			t.Fatalf("read %s during outage: %d bytes, err %v", path, len(data), err)
		}
	}
	f.Replicator.Wait()
	f.FedSites[0].SetDown(false)
	f.Replicator.Reconcile()
	f.Replicator.Wait()
	for i := 0; i < objects; i++ {
		rel := fmt.Sprintf("/run/%03d", i)
		if n := f.ReplicaCatalog.CountValid(rel); n < 2 {
			t.Fatalf("%s after revive: %d valid replicas", rel, n)
		}
	}
}

// TestRulesDriveReplication exercises the rules integration both
// ways: an OnTag rule triggers EnsureReplicas, and an OnReplica rule
// observes the catalog's event stream.
func TestRulesDriveReplication(t *testing.T) {
	f, err := New(Options{
		Sites:       []string{"a", "b"},
		MinReplicas: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.Rules.Add(rules.Rule{
		Name:    "replicate-on-demand",
		Event:   rules.OnTag,
		Tag:     "replicate",
		Actions: []rules.Action{rules.EnsureReplicas(f.Replicator)},
	})
	f.Rules.Add(rules.Rule{
		Name:    "note-valid-replicas",
		Event:   rules.OnReplica,
		State:   "valid",
		Actions: []rules.Action{rules.AddTag("geo-replicated")},
	})

	// Write directly (no metadata registration), then register
	// without the create event reaching the engine first... simplest:
	// register and let the tag drive a redundant Ensure.
	if _, _, err := f.Layer.WriteChecksummed("/sites/exp/x", strings.NewReader("rule-driven")); err != nil {
		t.Fatal(err)
	}
	ds, err := f.Meta.Create("proj", "/sites/exp/x", 11, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Meta.Tag(ds.ID, "replicate"); err != nil {
		t.Fatal(err)
	}
	f.Replicator.Wait()
	f.Meta.Flush()

	if n := f.ReplicaCatalog.CountValid("/exp/x"); n != 2 {
		t.Fatalf("valid = %d, want 2", n)
	}
	got, _ := f.Meta.Get(ds.ID)
	if !got.HasTag("geo-replicated") {
		t.Fatalf("OnReplica rule did not fire; tags = %v", got.Tags)
	}
	// The engine's singleflight absorbed the create-event/rule race.
	if st := f.Replicator.Stats(); st.Transfers != 1 {
		t.Fatalf("transfers = %d, want 1 (%+v)", st.Transfers, st)
	}
}

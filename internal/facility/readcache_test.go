package facility

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/adal"
	"repro/internal/units"
)

// TestFacilityReadCache: with ReadCacheMemory set, the /sites mount
// resolves through the read cache — repeated reads are served from
// the hot set, and a Remove through the layer evicts.
func TestFacilityReadCache(t *testing.T) {
	f, err := New(Options{
		Sites:           []string{"kit", "gridka", "desy"},
		ReadCacheMemory: 4 * units.MiB,
		ReadCacheDisk:   16 * units.MiB,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.ReadCache == nil {
		t.Fatal("ReadCache not assembled")
	}

	data := bytes.Repeat([]byte("cacheable "), 4096)
	if _, _, err := f.Layer.WriteChecksummed("/sites/exp/run1", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	f.Replicator.Wait()

	read := func() []byte {
		r, err := f.Layer.Open("/sites/exp/run1")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	if got := read(); !bytes.Equal(got, data) {
		t.Fatal("first read mismatch")
	}
	if got := read(); !bytes.Equal(got, data) {
		t.Fatal("second read mismatch")
	}
	st := f.ReadCache.Stats()
	if st.Fills != 1 || st.MemHits != 1 {
		t.Fatalf("stats = %+v, want 1 fill and 1 mem hit", st)
	}
	if tier, ok := f.ReadCache.CacheTier("/exp/run1"); !ok || tier != "memory" {
		t.Fatalf("tier = %q/%v, want memory", tier, ok)
	}

	// Removing through the layer reaches the cache's Remove and the
	// bus events; the entry must be gone on both counts.
	if err := f.Layer.Remove("/sites/exp/run1"); err != nil {
		t.Fatal(err)
	}
	f.Meta.Flush()
	if _, ok := f.ReadCache.CacheTier("/exp/run1"); ok {
		t.Fatal("entry still cached after Remove")
	}
	if _, err := f.Layer.Open("/sites/exp/run1"); err == nil {
		t.Fatal("open succeeded after Remove")
	}
}

// TestFacilityReadCacheDiskDir: a facility restarted on the same
// ReadCacheDir re-admits the disk tier's objects.
func TestFacilityReadCacheDiskDir(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Sites:         []string{"kit", "gridka"},
		ReadCacheDisk: 16 * units.MiB,
		ReadCacheDir:  dir,
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("warm "), 2048)
	if _, _, err := f.Layer.WriteChecksummed("/sites/exp/warm", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	f.Replicator.Wait()
	r, err := f.Layer.Open("/sites/exp/warm") // fill the disk tier
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r)
	r.Close()
	if _, ok := f.ReadCache.CacheTier("/exp/warm"); !ok {
		t.Fatal("object not on the disk tier after read")
	}
	f.Close()

	// A fresh facility on the same directory recovers the entry.
	f2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if tier, ok := f2.ReadCache.CacheTier("/exp/warm"); !ok || tier != "disk" {
		t.Fatalf("recovered tier = %q/%v, want disk", tier, ok)
	}
	if _, err := adal.NewLocalFS("probe", dir); err != nil {
		t.Fatal(err)
	}
}

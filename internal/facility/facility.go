// Package facility assembles the LSDF (slide 10's architecture
// figure): the federated storage namespace (ADAL), the project
// metadata DB, the DataBrowser, the workflow orchestrator, the rule
// engine, and the Hadoop analysis cluster — plus discrete-event
// scenario models for the facility-scale numbers (petabytes, tape,
// 10 GE) that cannot run for real on a laptop.
//
// The metadata DB is sharded (Options.MetadataShards, default 16)
// and by default delivers mutation events synchronously on the
// mutating goroutine, which keeps workflow triggers and rules
// deterministic. Options.AsyncEvents switches delivery to the
// store's background event bus; after bulk operations call
// Meta.Flush to wait for trigger/rule quiescence. Close flushes and
// stops the bus before detaching the orchestrator and rule engine,
// so no event is lost on shutdown.
package facility

import (
	"fmt"
	"time"

	"repro/internal/adal"
	"repro/internal/cloud"
	"repro/internal/databrowser"
	"repro/internal/dfs"
	"repro/internal/mapreduce"
	"repro/internal/metadata"
	"repro/internal/mrpc"
	"repro/internal/objectstore"
	"repro/internal/obs"
	"repro/internal/readcache"
	"repro/internal/replication"
	"repro/internal/rules"
	"repro/internal/tape"
	"repro/internal/tiering"
	"repro/internal/units"
	"repro/internal/workflow"
)

// Options configures a real (executable) facility instance. Zero
// values scale the paper's layout down to laptop size.
type Options struct {
	// DFSNodes is the analysis cluster size (paper: 60).
	DFSNodes int
	// DFSRacks spreads nodes across racks (paper-era: 4 racks).
	DFSRacks int
	// DFSBlockSize is the HDFS block size (paper-era default 64 MiB;
	// tests use smaller).
	DFSBlockSize units.Bytes
	// DFSNodeCapacity bounds each datanode (110 TB / 60 at full scale).
	DFSNodeCapacity units.Bytes
	// Replication is the HDFS replication factor (default 3).
	Replication int
	// DFSReplicaStreams bounds concurrent block replica transfers
	// across the cluster — the write-pipeline fan-out (default
	// 4×GOMAXPROCS).
	DFSReplicaStreams int
	// ShuffleMemory is the default per-map-task intermediate buffer
	// for MapReduce jobs run through the facility: tasks exceeding it
	// spill sorted runs to the analysis cluster's DFS and reducers
	// stream-merge them back. 0 keeps jobs fully in memory; a job's
	// own Config.ShuffleMemory overrides it.
	ShuffleMemory units.Bytes
	// ComputeWorkers enables the distributed MapReduce plane when > 0:
	// the facility runs a job master plus that many worker runtimes
	// over the analysis cluster, and named-job submissions
	// (SubmitNamedJob, the gateway's /v1/jobs) execute with scheduling
	// distributed across them — heartbeat leases, speculative straggler
	// backups, weighted multi-tenant fair-share. 0 (the default) keeps
	// named jobs on the single-process engine.
	ComputeWorkers int
	// ComputeSlots is each compute worker's concurrent task capacity
	// (default 2, the Hadoop-era TaskTracker default).
	ComputeSlots int
	// ComputeAddr is the compute master's control-plane listen address
	// ("" = loopback ephemeral). Set it to a routable address to let
	// out-of-process lsdf-worker runtimes join the facility's fleet.
	ComputeAddr string
	// JobTemplates is the named-job registry shared by the master and
	// every worker (default mapreduce.Builtin). Operators register
	// community analyses here.
	JobTemplates mapreduce.Registry
	// TenantWeights sets per-tenant fair-share weights on the compute
	// master (unlisted tenants weigh 1).
	TenantWeights map[string]int
	// AsyncWorkflows > 0 runs triggered workflows on that many workers.
	AsyncWorkflows int
	// MetadataShards overrides the metadata store's shard count
	// (default 16; rounded up to a power of two).
	MetadataShards int
	// AsyncEvents delivers metadata events through the store's
	// background bus instead of synchronously on the mutating
	// goroutine. Deterministic consumers should call Meta.Flush
	// before inspecting trigger/rule effects.
	AsyncEvents bool
	// EventQueue bounds each subscriber's event queue when
	// AsyncEvents is set (default 256).
	EventQueue int
	// WALDir enables durable metadata when non-empty: every mutation
	// is journaled to a per-shard write-ahead log under this
	// directory before it is acknowledged, compacted snapshots are
	// taken as the logs grow, and reopening a facility on the same
	// directory recovers the full metadata state — datasets, tags,
	// processing history, placement and replica notes — after a crash
	// or kill -9 (experiment E15). Empty (the default) keeps the
	// store purely in-memory, as before.
	WALDir string
	// SnapshotEvery is the per-shard record count between compacted
	// snapshots when WALDir is set (default 512).
	SnapshotEvery int
	// GroupCommitInterval is the WAL group-commit window: a commit
	// leader waits this long for concurrent mutations to pile into
	// the batch before paying one shared fsync. 0 commits eagerly
	// (every waiter still shares the in-flight sync).
	GroupCommitInterval time.Duration

	// TierHotCapacity enables the live tiered data path when > 0:
	// the /ddn mount becomes a tiering.TierBackend federating the DDN
	// MemFS (hot) with a real-time tape store (cold, also mounted at
	// /tape for inspection). Writes past the high watermark trigger
	// background migration to tape; opening a migrated path recalls
	// it transparently. 0 (the default) keeps /ddn a plain MemFS.
	TierHotCapacity units.Bytes
	// TierPolicy sets the tier's watermarks/age policy. The zero
	// value takes tiering.DefaultPolicy with MinAge and ScanInterval
	// cleared — real facilities age in hours, tests in milliseconds,
	// so the facility default migrates on demand (write-triggered
	// scans) with no age floor.
	TierPolicy tiering.Policy
	// TierMigrationWorkers sizes the tier's migration pool (default 2).
	TierMigrationWorkers int

	// Sites enables the multi-site replication subsystem when
	// non-empty: each name becomes a federation site (an in-memory
	// backend; order = distance, nearest first), served together at
	// /sites through a replication.FederatedBackend. Reads resolve to
	// the nearest valid replica and fail over transparently; writes
	// land on the nearest site and fan out asynchronously to
	// MinReplicas, driven by the metadata event bus.
	Sites []string
	// MinReplicas is the replication target per object (default 2,
	// capped at len(Sites)).
	MinReplicas int
	// ReplicaStreams sizes the replication engine's transfer worker
	// pool (default 4).
	ReplicaStreams int
	// ReplicaWAN, when set, paces inter-site transfers by per-pair
	// bandwidth/latency (degraded-link experiments); nil = LAN speed.
	ReplicaWAN *replication.WAN

	// ReadCacheMemory enables the hot-set read cache in front of the
	// /sites federation when > 0: a byte-budgeted in-memory tier with
	// segmented eviction, singleflight checksum-verified fills, and
	// invalidation from the replica events on the bus. Requires Sites.
	ReadCacheMemory units.Bytes
	// ReadCacheDisk adds the cache's local-disk tier when > 0, backed
	// by ReadCacheDir (a LocalFS directory that must exist) or, when
	// ReadCacheDir is empty, an in-memory stand-in — useful in tests
	// and scenarios that want two-tier behavior without touching disk.
	ReadCacheDisk units.Bytes
	// ReadCacheDir is the disk tier's directory; entries found there
	// at startup are re-admitted (a restarted facility keeps its
	// warmed set).
	ReadCacheDir string
	// ReadCacheNegTTL enables the cache's negative tier: not-found
	// lookups are remembered this long (invalidated early by created
	// events on the bus), so polling for an object that hasn't arrived
	// yet stops probing every federation site on each poll.
	ReadCacheNegTTL time.Duration
}

func (o Options) withDefaults() Options {
	if o.DFSNodes <= 0 {
		o.DFSNodes = 8
	}
	if o.DFSRacks <= 0 {
		o.DFSRacks = 2
	}
	if o.DFSBlockSize <= 0 {
		o.DFSBlockSize = 4 * units.MiB
	}
	if o.DFSNodeCapacity <= 0 {
		o.DFSNodeCapacity = 4 * units.GiB
	}
	if o.Replication <= 0 {
		o.Replication = 3
	}
	return o
}

// Facility is the executable LSDF: every service of the paper's
// architecture, wired and running in-process.
type Facility struct {
	Layer        *adal.Layer
	Meta         *metadata.Store
	Browser      *databrowser.Browser
	Orchestrator *workflow.Orchestrator
	Rules        *rules.Engine
	DFS          *dfs.Cluster
	Cloud        *cloud.Cloud // nil unless a scenario attaches one

	// Mounts, for reference: /ddn and /ibm are the disk systems,
	// /archive the tape-backed store, /hdfs the analysis cluster,
	// /s3 the slide-14 object store (versioned). With tiering enabled
	// /ddn resolves to Tier (DDN remains its hot store) and /tape to
	// the cold tape store. With Options.Sites set, /sites is the
	// multi-site replication federation.
	DDN, IBM, Archive *adal.MemFS
	ObjectStore       *objectstore.Store

	// Tier is the live tiered data path over DDN + Tape; nil unless
	// Options.TierHotCapacity was set.
	Tier *tiering.TierBackend
	// Tape is the tier's cold backend; nil unless tiering is enabled.
	Tape *tape.FS

	// Multi-site replication (mounted at /sites); all nil unless
	// Options.Sites was set.
	ReplicaCatalog *replication.Catalog
	Replicator     *replication.Engine
	Federation     *replication.FederatedBackend
	FedSites       []*replication.Site

	// ReadCache fronts the federation at /sites; nil unless
	// Options.ReadCacheMemory or ReadCacheDisk was set.
	ReadCache *readcache.Cache

	// Compute is the distributed MapReduce master; nil unless
	// Options.ComputeWorkers was set. Its workers run in-process,
	// bound to the analysis cluster's datanodes.
	Compute        *mapreduce.Master
	computeWorkers []*mapreduce.Worker

	// Obs is the facility-wide metrics registry: every subsystem's
	// counters (DFS, metadata WAL, read cache, replication, compute,
	// Go runtime) exposed through one Prometheus scrape. The gateway
	// instruments into and serves this same registry at /metrics.
	Obs *obs.Registry
	// Tracer is the facility-wide request-trace ring. The gateway
	// mints into it; the compute master attaches job and attempt
	// spans to the same IDs.
	Tracer *obs.Tracer

	templates     mapreduce.Registry
	shuffleMemory units.Bytes // default MapReduce spill budget (Options.ShuffleMemory)
}

// New assembles a facility.
func New(opts Options) (*Facility, error) {
	opts = opts.withDefaults()
	reg := obs.New()
	tracer := obs.NewTracer(512)

	cluster := dfs.NewCluster(dfs.Config{
		BlockSize:         opts.DFSBlockSize,
		Replication:       opts.Replication,
		Seed:              1,
		MaxReplicaStreams: opts.DFSReplicaStreams,
	})
	for i := 0; i < opts.DFSNodes; i++ {
		rack := fmt.Sprintf("rack%d", i%opts.DFSRacks)
		if _, err := cluster.AddDataNode(fmt.Sprintf("dn%03d", i), rack, opts.DFSNodeCapacity); err != nil {
			return nil, err
		}
	}

	layer := adal.NewLayer()
	ddn := adal.NewMemFS("ddn")
	ibm := adal.NewMemFS("ibm")
	arc := adal.NewMemFS("archive")
	objStore := objectstore.New(true)
	if err := objStore.CreateBucket("lsdf"); err != nil {
		return nil, err
	}
	objBackend, err := objectstore.NewBackend("s3", objStore, "lsdf")
	if err != nil {
		return nil, err
	}
	meta, err := metadata.Open(metadata.Options{
		Shards:              opts.MetadataShards,
		Async:               opts.AsyncEvents,
		QueueLen:            opts.EventQueue,
		WALDir:              opts.WALDir,
		SnapshotEvery:       opts.SnapshotEvery,
		GroupCommitInterval: opts.GroupCommitInterval,
	})
	if err != nil {
		return nil, fmt.Errorf("facility: metadata recovery: %w", err)
	}

	// The /ddn mount: plain MemFS, or — with tiering on — a
	// TierBackend whose hot store is that same MemFS and whose cold
	// store is a real-time tape FS.
	var ddnMount adal.Backend = ddn
	var tier *tiering.TierBackend
	var tapeFS *tape.FS
	if opts.TierHotCapacity > 0 {
		pol := opts.TierPolicy
		if pol == (tiering.Policy{}) {
			pol = tiering.DefaultPolicy()
			pol.MinAge = 0
			pol.ScanInterval = 0
		}
		tapeFS = tape.NewFS("tape", tape.FSConfig{CartridgeSize: pol.CartridgeSize})
		tier, err = tiering.New("ddn-tier", ddn, tapeFS, tiering.Config{
			Policy:           pol,
			HotCapacity:      opts.TierHotCapacity,
			MigrationWorkers: opts.TierMigrationWorkers,
			Meta:             meta,
			MountPrefix:      "/ddn",
		})
		if err != nil {
			return nil, err
		}
		ddnMount = tier
	}

	// The replication federation: one site per Options.Sites name,
	// nearest first, behind a federated backend at /sites.
	var repCatalog *replication.Catalog
	var repEngine *replication.Engine
	var fedBackend *replication.FederatedBackend
	var fedSites []*replication.Site
	if len(opts.Sites) > 0 {
		for i, name := range opts.Sites {
			fedSites = append(fedSites, replication.NewSite(name, adal.NewMemFS(name), i))
		}
		repCatalog = replication.NewCatalog(replication.CatalogConfig{
			Meta:        meta,
			MountPrefix: "/sites",
		})
		repEngine, err = replication.NewEngine(replication.Config{
			Catalog:     repCatalog,
			Sites:       fedSites,
			MinReplicas: opts.MinReplicas,
			Streams:     opts.ReplicaStreams,
			WAN:         opts.ReplicaWAN,
			Meta:        meta,
			MountPrefix: "/sites",
		})
		if err != nil {
			return nil, err
		}
		fedBackend = replication.NewFederated("sites", repEngine)
	}

	// The read cache wraps the federation: the /sites mount resolves
	// through it, so every federated read is hot-set cached.
	var sitesMount adal.Backend = fedBackend
	var cache *readcache.Cache
	if fedBackend != nil && (opts.ReadCacheMemory > 0 || opts.ReadCacheDisk > 0) {
		var diskTier adal.Backend
		if opts.ReadCacheDisk > 0 {
			if opts.ReadCacheDir != "" {
				diskTier, err = adal.NewLocalFS("readcache", opts.ReadCacheDir)
				if err != nil {
					return nil, fmt.Errorf("facility: read cache dir: %w", err)
				}
			} else {
				diskTier = adal.NewMemFS("readcache")
			}
		}
		cache = readcache.New(fedBackend, readcache.Config{
			Memory:      opts.ReadCacheMemory,
			Disk:        diskTier,
			DiskBudget:  opts.ReadCacheDisk,
			NegTTL:      opts.ReadCacheNegTTL,
			Meta:        meta,
			MountPrefix: "/sites",
			Obs:         reg,
		})
		sitesMount = cache
	}

	mounts := map[string]adal.Backend{
		"/ddn":     ddnMount,
		"/ibm":     ibm,
		"/archive": arc,
		"/hdfs":    adal.NewDFSBackend("hdfs", cluster, "dn000"),
		"/s3":      objBackend,
	}
	if tapeFS != nil {
		mounts["/tape"] = tapeFS
	}
	if fedBackend != nil {
		mounts["/sites"] = sitesMount
	}
	for prefix, b := range mounts {
		if err := layer.Mount(prefix, b); err != nil {
			return nil, err
		}
	}

	f := &Facility{
		Layer:          layer,
		Meta:           meta,
		Browser:        databrowser.New(layer, meta),
		DFS:            cluster,
		DDN:            ddn,
		IBM:            ibm,
		Archive:        arc,
		ObjectStore:    objStore,
		Tier:           tier,
		Tape:           tapeFS,
		ReplicaCatalog: repCatalog,
		Replicator:     repEngine,
		Federation:     fedBackend,
		FedSites:       fedSites,
		ReadCache:      cache,
		Obs:            reg,
		Tracer:         tracer,
		shuffleMemory:  opts.ShuffleMemory,
	}
	f.Browser.SetObs(reg)
	f.Orchestrator = workflow.NewOrchestrator(layer, meta, opts.AsyncWorkflows)
	f.Rules = rules.NewEngine(layer, meta)

	f.templates = opts.JobTemplates
	if f.templates == nil {
		f.templates = mapreduce.Builtin()
	}
	if opts.ComputeWorkers > 0 {
		master, err := mapreduce.NewMaster(mapreduce.MasterConfig{
			Cluster:       cluster,
			Registry:      f.templates,
			Addr:          opts.ComputeAddr,
			ShuffleMemory: opts.ShuffleMemory,
			Tracer:        tracer,
		})
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Compute = master
		for tenant, w := range opts.TenantWeights {
			master.SetTenantWeight(tenant, w)
		}
		nodes := cluster.DataNodes()
		for i := 0; i < opts.ComputeWorkers; i++ {
			w, err := mapreduce.StartWorker(mapreduce.WorkerConfig{
				ID:       fmt.Sprintf("cw%02d", i),
				Master:   master.URL(),
				Store:    mapreduce.NewDFSStore(cluster),
				Node:     nodes[i%len(nodes)],
				Slots:    opts.ComputeSlots,
				Registry: f.templates,
			})
			if err != nil {
				f.Close()
				return nil, err
			}
			f.computeWorkers = append(f.computeWorkers, w)
		}
	}
	f.registerObs()
	return f, nil
}

// Close stops the tier's migration machinery (its last placement
// events still reach the bus), drains the metadata event bus, then
// releases orchestrator workers and detaches the rule engine — in
// that order, so every event published before Close still reaches
// its triggers.
func (f *Facility) Close() {
	for _, w := range f.computeWorkers {
		w.Close()
	}
	if f.Compute != nil {
		f.Compute.Close()
	}
	if f.ReadCache != nil {
		f.ReadCache.Close()
	}
	if f.Tier != nil {
		f.Tier.Close()
	}
	if f.Replicator != nil {
		f.Replicator.Close()
	}
	if f.Meta != nil {
		f.Meta.Close()
	}
	if f.Orchestrator != nil {
		f.Orchestrator.Close()
	}
	if f.Rules != nil {
		f.Rules.Close()
	}
}

// RunJob executes a MapReduce job on the facility's analysis cluster.
// Jobs whose ShuffleMemory is zero inherit the facility's default
// spill budget (Options.ShuffleMemory); a negative ShuffleMemory
// opts the job out, forcing the pure in-memory shuffle.
func (f *Facility) RunJob(cfg mapreduce.Config) (*mapreduce.Result, error) {
	if cfg.ShuffleMemory == 0 {
		cfg.ShuffleMemory = f.shuffleMemory
	}
	return mapreduce.Run(f.DFS, cfg)
}

// SubmitNamedJob admits a registered job template for execution and
// returns a wait function for its result. With a compute plane
// (Options.ComputeWorkers) the job runs distributed under the
// master's scheduling; otherwise it resolves against the same
// registry and runs on the single-process engine — byte-identical
// output either way. Submission errors (unknown template, missing
// inputs) surface synchronously.
func (f *Facility) SubmitNamedJob(spec mrpc.JobSpec, tenant string) (func() (*mapreduce.Result, error), error) {
	if f.Compute != nil {
		if spec.ShuffleMemory == 0 {
			spec.ShuffleMemory = int64(f.shuffleMemory)
		}
		j, err := f.Compute.Submit(spec, tenant)
		if err != nil {
			return nil, err
		}
		return j.Wait, nil
	}
	cfg, err := f.templates.Resolve(spec)
	if err != nil {
		return nil, err
	}
	if cfg.ShuffleMemory == 0 {
		cfg.ShuffleMemory = f.shuffleMemory
	}
	c := cfg
	return func() (*mapreduce.Result, error) { return mapreduce.Run(f.DFS, c) }, nil
}

// HasJobTemplate reports whether the facility's job registry knows a
// template name.
func (f *Facility) HasJobTemplate(name string) bool {
	_, ok := f.templates[name]
	return ok
}

// RunNamedJob is SubmitNamedJob run to completion.
func (f *Facility) RunNamedJob(spec mrpc.JobSpec, tenant string) (*mapreduce.Result, error) {
	wait, err := f.SubmitNamedJob(spec, tenant)
	if err != nil {
		return nil, err
	}
	return wait()
}

package facility

import (
	"time"

	"repro/internal/hsm"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/units"
)

// Scenario is the facility-scale discrete-event model of slide 7: the
// two disk systems (0.5 PB DDN + 1.4 PB IBM), the tape library, the
// dedicated 10 GE backbone with its redundant routers, the direct
// institute links, and the Heidelberg access path. It exists to
// regenerate the paper's petabyte-scale numbers in virtual time.
type Scenario struct {
	Eng  *sim.Engine
	Net  *netsim.Network
	DDN  *storage.Array
	IBM  *storage.Array
	Tape *tape.Library
	HSM  *hsm.Manager
}

// ScenarioConfig carries the facility's physical parameters; zero
// values take the paper's figures.
type ScenarioConfig struct {
	DDNCapacity units.Bytes // 0.5 PB
	IBMCapacity units.Bytes // 1.4 PB
	DiskBW      units.Rate  // aggregate controller bandwidth per array
	Backbone    units.Rate  // 10 GE
	TapeConfig  tape.Config
	HSMPolicy   hsm.Policy
	Seed        int64
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.DDNCapacity <= 0 {
		c.DDNCapacity = 500 * units.TB
	}
	if c.IBMCapacity <= 0 {
		c.IBMCapacity = units.Bytes(1400) * units.TB
	}
	if c.DiskBW <= 0 {
		c.DiskBW = units.Rate(5 * units.GB)
	}
	if c.Backbone <= 0 {
		c.Backbone = units.Gbps(10)
	}
	if c.TapeConfig.Drives == 0 {
		c.TapeConfig = tape.DefaultConfig()
	}
	if c.HSMPolicy.HighWatermark == 0 {
		c.HSMPolicy = hsm.DefaultPolicy()
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NewScenario builds the slide-7 topology:
//
//	experiments (DAQ) --10GE--> router1/router2 --10GE--> {ddn, ibm, hadoop}
//	uni-heidelberg   --10GE--> access --------> routers
//	kit-network/internet ----> access
func NewScenario(cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	eng := sim.New(cfg.Seed)
	net := netsim.New(eng)

	// Redundant routers: two parallel paths between the edge and the
	// storage core.
	for _, router := range []string{"router1", "router2"} {
		net.AddDuplexLink("daq", router, cfg.Backbone, time.Millisecond)
		net.AddDuplexLink(router, "ddn", cfg.Backbone, time.Millisecond)
		net.AddDuplexLink(router, "ibm", cfg.Backbone, time.Millisecond)
		net.AddDuplexLink(router, "hadoop", cfg.Backbone, time.Millisecond)
		net.AddDuplexLink("access", router, cfg.Backbone, time.Millisecond)
	}
	net.AddDuplexLink("uni-heidelberg", "access", cfg.Backbone, 3*time.Millisecond)
	net.AddDuplexLink("kit-campus", "access", cfg.Backbone, time.Millisecond)

	ddn := storage.NewArray(eng, "ddn", cfg.DDNCapacity, cfg.DiskBW)
	ibm := storage.NewArray(eng, "ibm", cfg.IBMCapacity, cfg.DiskBW)
	if _, err := ddn.CreateVolume("data", 0); err != nil {
		return nil, err
	}
	if _, err := ibm.CreateVolume("data", 0); err != nil {
		return nil, err
	}
	lib := tape.New(eng, cfg.TapeConfig)
	mgr, err := hsm.New(eng, ibm, "data", lib, cfg.HSMPolicy)
	if err != nil {
		return nil, err
	}
	return &Scenario{Eng: eng, Net: net, DDN: ddn, IBM: ibm, Tape: lib, HSM: mgr}, nil
}

// IngestStream models one experiment's DAQ feed: objects of Size
// produced at Rate, streamed to the target array through the
// backbone. DAQ systems buffer and stream continuously rather than
// opening a connection per image, so the model sends one network flow
// per Batch window carrying every whole object produced in it; the
// leftover bytes carry into the next window. Used for the
// sustained-ingest experiment (E1) and the fill simulation (E2).
type IngestStream struct {
	Name  string
	Src   string // network node, e.g. "daq"
	Dst   string // "ddn" or "ibm"
	Size  units.Bytes
	Rate  units.Rate    // offered load
	Batch time.Duration // flow window; default 1 minute
}

// IngestResult summarizes a stream after a run.
type IngestResult struct {
	Objects     int
	Bytes       units.Bytes
	Rejected    int // objects dropped because the array filled
	LastArrival time.Duration
}

// RunIngest offers the streams for the given duration of virtual time
// and reports per-stream results. Capacity is reserved per batch when
// the batch is offered (the DAQ pauses when the target volume is
// full, which surfaces as rejected objects).
func (s *Scenario) RunIngest(streams []*IngestStream, horizon time.Duration) map[string]*IngestResult {
	results := make(map[string]*IngestResult, len(streams))
	for _, st := range streams {
		st := st
		res := &IngestResult{}
		results[st.Name] = res
		batch := st.Batch
		if batch <= 0 {
			batch = time.Minute
		}
		array := s.DDN
		if st.Dst == "ibm" {
			array = s.IBM
		}
		carry := 0.0 // produced bytes not yet shipped
		var launch func()
		launch = func() {
			if s.Eng.Now() >= horizon {
				return
			}
			carry += float64(st.Rate) * batch.Seconds()
			objs := int(carry / float64(st.Size))
			if objs > 0 {
				bytes := units.Bytes(objs) * st.Size
				carry -= float64(bytes)
				if err := array.Alloc("data", bytes); err != nil {
					res.Rejected += objs
				} else {
					_, ferr := s.Net.StartFlow(netsim.FlowSpec{
						Src: st.Src, Dst: st.Dst, Bytes: bytes,
						Efficiency: 0.9,
						OnComplete: func(f *netsim.Flow) {
							array.Write(bytes, func() {
								res.Objects += objs
								res.Bytes += bytes
								res.LastArrival = s.Eng.Now()
							})
						},
					})
					if ferr != nil {
						res.Rejected += objs
						_ = array.Free("data", bytes)
					}
				}
			}
			s.Eng.Schedule(batch, launch)
		}
		s.Eng.Schedule(0, launch)
	}
	s.Eng.RunUntil(horizon)
	// Drain in-flight transfers so byte counts are complete.
	s.Eng.Run()
	return results
}

// TransferCase is one row of the E5 study.
type TransferCase struct {
	Label      string
	Bytes      units.Bytes
	Efficiency float64
	Parallel   int // concurrent competing flows on the same path
}

// TransferResult reports the modeled completion time.
type TransferResult struct {
	Label string
	Days  float64
}

// TransferStudy runs each case on a fresh two-node 10 GE topology and
// reports the slowest flow's completion in days — the paper's "15
// days to transfer 1 PB" arithmetic with protocol efficiency and
// contention made explicit.
func TransferStudy(cases []TransferCase, linkRate units.Rate) []TransferResult {
	out := make([]TransferResult, 0, len(cases))
	for _, c := range cases {
		eng := sim.New(1)
		net := netsim.New(eng)
		net.AddDuplexLink("kit", "remote", linkRate, 10*time.Millisecond)
		n := c.Parallel
		if n <= 0 {
			n = 1
		}
		var worst time.Duration
		for i := 0; i < n; i++ {
			_, err := net.StartFlow(netsim.FlowSpec{
				Src: "kit", Dst: "remote", Bytes: c.Bytes,
				Efficiency: c.Efficiency,
				OnComplete: func(f *netsim.Flow) {
					if f.Elapsed() > worst {
						worst = f.Elapsed()
					}
				},
			})
			if err != nil {
				panic(err)
			}
		}
		eng.Run()
		out = append(out, TransferResult{Label: c.Label, Days: worst.Hours() / 24})
	}
	return out
}

package facility

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ingest"
	"repro/internal/metadata"
	"repro/internal/tiering"
	"repro/internal/units"
)

func newTieredFacility(t *testing.T, hotCap units.Bytes, pol tiering.Policy) *Facility {
	t.Helper()
	f, err := New(Options{
		TierHotCapacity:      hotCap,
		TierPolicy:           pol,
		TierMigrationWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestTieredMountTransparentRecall is the acceptance path: an object
// written through the ordinary ADAL mount table migrates to tape and
// reads back byte-identically through the same federated path, with
// zero caller changes.
func TestTieredMountTransparentRecall(t *testing.T) {
	f := newTieredFacility(t, 10*units.MiB, tiering.Policy{})
	data := bytes.Repeat([]byte("katrin-spectrum "), 4096) // 64 KiB

	n, sum, err := f.Layer.WriteChecksummed("/ddn/katrin/run1.raw", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if n != units.Bytes(len(data)) {
		t.Fatalf("wrote %d", n)
	}
	if err := f.Tier.Migrate("/katrin/run1.raw"); err != nil {
		t.Fatal(err)
	}
	if st, _ := f.Tier.State("/katrin/run1.raw"); st != tiering.Migrated {
		t.Fatalf("state = %v", st)
	}
	// The cold bytes physically live in the tape store.
	if f.Tape.FSStats().BytesIn != units.Bytes(len(data)) {
		t.Fatalf("tape holds %d bytes", f.Tape.FSStats().BytesIn)
	}
	// A plain Layer.Open — the call every existing client makes —
	// recalls transparently and byte-identically.
	r, err := f.Layer.Open("/ddn/katrin/run1.raw")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	r.Close()
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("recalled read differs (err=%v)", err)
	}
	// And the checksum primitive agrees with what ingest recorded.
	after, err := f.Layer.Checksum("/ddn/katrin/run1.raw")
	if err != nil || after != sum {
		t.Fatalf("checksum after recall = %s, want %s (err=%v)", after, sum, err)
	}
}

// TestTieredIngestWatermarkStress overfills the hot tier through the
// real ingest pipeline and checks that background migration holds
// utilization at the watermark while every object stays readable and
// registered.
func TestTieredIngestWatermarkStress(t *testing.T) {
	pol := tiering.Policy{HighWatermark: 0.80, LowWatermark: 0.50}
	f := newTieredFacility(t, 512*units.KiB, pol)

	const n, objSize = 120, 16 * 1024 // 1.9 MB offered vs 512 KiB hot
	objs := make([]*ingest.Object, n)
	for i := range objs {
		objs[i] = &ingest.Object{
			Project: "itg",
			Path:    fmt.Sprintf("/ddn/itg/img%04d.raw", i),
			Data:    strings.NewReader(strings.Repeat(string(rune('a'+i%26)), objSize)),
		}
	}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4, BatchSize: 8})
	stats, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: objs})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != n {
		t.Fatalf("ingested %d/%d", stats.Objects, n)
	}
	// Settle and assert the watermark held.
	for i := 0; i < 10; i++ {
		f.Tier.Scan()
		f.Tier.Wait()
		if f.Tier.Utilization() <= pol.HighWatermark {
			break
		}
	}
	ts := f.Tier.Stats()
	if ts.HotUtilization > pol.HighWatermark {
		t.Fatalf("hot utilization %.2f > high watermark %.2f", ts.HotUtilization, pol.HighWatermark)
	}
	if ts.Migrated == 0 || ts.Migrations == 0 {
		t.Fatalf("nothing migrated under pressure: %+v", ts)
	}
	// Every ingested object reads back intact through the mount table.
	for i := range objs {
		path := fmt.Sprintf("/ddn/itg/img%04d.raw", i)
		r, err := f.Layer.Open(path)
		if err != nil {
			t.Fatalf("open %s: %v", path, err)
		}
		got, err := io.ReadAll(r)
		r.Close()
		if err != nil || len(got) != objSize || got[0] != byte('a'+i%26) {
			t.Fatalf("%s corrupted after tiering (err=%v, len=%d)", path, err, len(got))
		}
	}
}

// TestTieredConcurrentRecallDedup asserts the singleflight invariant
// through the facility: many concurrent readers of one migrated path
// cost exactly one tape recall.
func TestTieredConcurrentRecallDedup(t *testing.T) {
	f := newTieredFacility(t, 10*units.MiB, tiering.Policy{})
	data := bytes.Repeat([]byte{0xD2}, 128*1024)
	if _, _, err := f.Layer.WriteChecksummed("/ddn/d/x", bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if err := f.Tier.Migrate("/d/x"); err != nil {
		t.Fatal(err)
	}
	const readers = 24
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := f.Layer.Open("/ddn/d/x")
			if err != nil {
				bad.Add(1)
				return
			}
			got, err := io.ReadAll(r)
			r.Close()
			if err != nil || !bytes.Equal(got, data) {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d readers failed", bad.Load())
	}
	ts := f.Tier.Stats()
	if ts.Recalls != 1 {
		t.Fatalf("recalls = %d, want 1 (deduplicated)", ts.Recalls)
	}
	if ts.RecallBytes != units.Bytes(len(data)) {
		t.Fatalf("recall bytes = %d", ts.RecallBytes)
	}
}

// TestTieredPremigrateOnIngest runs the pipeline in
// premigrate-on-ingest mode: every object ends Premigrated (bytes on
// both tiers) so watermark migration degrades to stub swaps.
func TestTieredPremigrateOnIngest(t *testing.T) {
	f := newTieredFacility(t, 10*units.MiB, tiering.Policy{})
	const n = 20
	objs := make([]*ingest.Object, n)
	for i := range objs {
		objs[i] = &ingest.Object{
			Project: "itg",
			Path:    fmt.Sprintf("/ddn/pm/%02d", i),
			Data:    strings.NewReader(strings.Repeat("z", 4096)),
		}
	}
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 4, Premigrate: true})
	if _, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: objs}); err != nil {
		t.Fatal(err)
	}
	ts := f.Tier.Stats()
	if ts.Premigrated != n || ts.Premigrations != uint64(n) {
		t.Fatalf("stats = %+v, want %d premigrated", ts, n)
	}
	if f.Tape.FSStats().Objects != n {
		t.Fatalf("tape objects = %d", f.Tape.FSStats().Objects)
	}
	// Migration of a premigrated object copies nothing more to tape.
	before := f.Tape.FSStats().BytesIn
	if err := f.Tier.Migrate("/pm/00"); err != nil {
		t.Fatal(err)
	}
	if after := f.Tape.FSStats().BytesIn; after != before {
		t.Fatalf("stub swap wrote %d new tape bytes", after-before)
	}
}

// TestTieredPlacementEventsReachSubscribers checks the PR 1 bus
// carries tier transitions with the federated path, joined to the
// registered dataset.
func TestTieredPlacementEventsReachSubscribers(t *testing.T) {
	f := newTieredFacility(t, 10*units.MiB, tiering.Policy{})
	var mu sync.Mutex
	events := make(map[string]int)
	f.Meta.Subscribe(func(ev metadata.Event) {
		if ev.Type != metadata.EventPlacement {
			return
		}
		mu.Lock()
		events[ev.Placement]++
		if ev.Dataset.Path != "/ddn/ev/x" {
			t.Errorf("event path = %q", ev.Dataset.Path)
		}
		mu.Unlock()
	})
	pipe := ingest.New(f.Layer, f.Meta, ingest.Config{Workers: 1})
	_, err := pipe.Run(context.Background(), &ingest.SliceProducer{Objects: []*ingest.Object{{
		Project: "itg", Path: "/ddn/ev/x", Data: strings.NewReader("payload"),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Tier.Migrate("/ev/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.Tier.Recall("/ev/x"); err != nil {
		t.Fatal(err)
	}
	f.Meta.Flush()
	mu.Lock()
	defer mu.Unlock()
	if events["resident"] != 1 || events["migrated"] != 1 || events["premigrated"] != 2 {
		t.Fatalf("placement events = %v", events)
	}
}

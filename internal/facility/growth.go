package facility

import (
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// The growth model regenerates slide 14's capacity planning: the
// facility holds 2 PB in 2011, grows to 6 PB of installed capacity in
// 2012, and the ingest load climbs from ~1 PB/year (2012) toward
// 6 PB/year (2014) as communities onboard.

// Community is one experiment's onboarding plan.
type Community struct {
	Name       string
	Onboarded  time.Duration // virtual time after simulation start
	DailyRate  units.Bytes   // steady-state ingest per day once onboarded
	RampMonths int           // months to reach the steady rate (linear)
}

// CapacityStep is one planned capacity installation.
type CapacityStep struct {
	At    time.Duration
	Total units.Bytes // installed capacity after this step
}

// GrowthConfig describes a planning scenario.
type GrowthConfig struct {
	Start       time.Time // calendar anchor for reporting
	Communities []Community
	Capacity    []CapacityStep
	Horizon     time.Duration
	Snapshot    time.Duration // sampling period (default 30 days)
}

// GrowthPoint is one sampled state of the facility.
type GrowthPoint struct {
	When          time.Time
	Stored        units.Bytes
	Installed     units.Bytes
	IngestPerYear units.Bytes // instantaneous rate annualized
	Utilization   float64
}

// LSDFGrowth is the paper's plan: zebrafish microscopy already
// running at 2 TB/day, capacity 2 PB now and 6 PB during 2012, with
// KATRIN, climate and geophysics onboarding through 2011-2012 pushing
// ingest toward 6 PB/year by 2014.
func LSDFGrowth() GrowthConfig {
	day := units.Bytes(0)
	_ = day
	return GrowthConfig{
		Start: time.Date(2011, 5, 20, 0, 0, 0, 0, time.UTC),
		Communities: []Community{
			{Name: "zebrafish-htm", Onboarded: 0, DailyRate: 2 * units.TB, RampMonths: 0},
			{Name: "bioquant-heidelberg", Onboarded: units.Days(60), DailyRate: units.Bytes(1.5 * float64(units.TB)), RampMonths: 3},
			{Name: "katrin", Onboarded: units.Days(210), DailyRate: 2 * units.TB, RampMonths: 6},
			{Name: "climate", Onboarded: units.Days(300), DailyRate: 3 * units.TB, RampMonths: 6},
			{Name: "geophysics", Onboarded: units.Days(420), DailyRate: 2 * units.TB, RampMonths: 6},
			{Name: "anka-synchrotron", Onboarded: units.Days(540), DailyRate: units.Bytes(6.5 * float64(units.TB)), RampMonths: 9},
		},
		Capacity: []CapacityStep{
			{At: 0, Total: 2 * units.PB},
			{At: units.Days(330), Total: 6 * units.PB}, // "6 PB in 2012"
			{At: units.Days(700), Total: 10 * units.PB},
			{At: units.Days(1000), Total: 14 * units.PB},
		},
		Horizon:  units.Years(3.6), // through 2014
		Snapshot: units.Days(30),
	}
}

// RunGrowth integrates the plan in virtual time and returns monthly
// snapshots. Data ages to tape but stays stored (the paper keeps old
// data: "old data is very valuable"), so Stored is cumulative.
func RunGrowth(cfg GrowthConfig) []GrowthPoint {
	if cfg.Snapshot <= 0 {
		cfg.Snapshot = units.Days(30)
	}
	eng := sim.New(1)
	var stored float64 // bytes
	caps := append([]CapacityStep(nil), cfg.Capacity...)
	sort.Slice(caps, func(i, j int) bool { return caps[i].At < caps[j].At })

	installedAt := func(t time.Duration) units.Bytes {
		var cur units.Bytes
		for _, c := range caps {
			if c.At <= t {
				cur = c.Total
			}
		}
		return cur
	}
	// Community rate at time t (B/day).
	rateAt := func(t time.Duration) float64 {
		var total float64
		for _, c := range cfg.Communities {
			if t < c.Onboarded {
				continue
			}
			r := float64(c.DailyRate)
			if c.RampMonths > 0 {
				ramp := float64(t-c.Onboarded) / float64(units.Days(30*float64(c.RampMonths)))
				if ramp < 1 {
					r *= ramp
				}
			}
			total += r
		}
		return total
	}

	var points []GrowthPoint
	step := units.Days(1)
	stop := eng.Every(step, func() {
		stored += rateAt(eng.Now())
	})
	defer stop()
	sampled := eng.Every(cfg.Snapshot, func() {
		installed := installedAt(eng.Now())
		util := 0.0
		if installed > 0 {
			util = stored / float64(installed)
		}
		points = append(points, GrowthPoint{
			When:          cfg.Start.Add(eng.Now()),
			Stored:        units.Bytes(stored),
			Installed:     installed,
			IngestPerYear: units.Bytes(rateAt(eng.Now()) * 365),
			Utilization:   util,
		})
	})
	defer sampled()
	eng.RunUntil(cfg.Horizon)
	return points
}

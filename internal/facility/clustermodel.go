package facility

import (
	"time"

	"repro/internal/units"
)

// ClusterModel projects measured small-scale MapReduce throughput to
// the paper's 60-node cluster. The paper reports aggregate outcomes
// ("1 TB dataset in 20 min"); we measure the real engine at laptop
// scale, calibrate per-node streaming throughput, and scale with a
// serial-fraction (Amdahl) model that captures the scheduling and
// shuffle overheads that keep scaling slightly sublinear.
type ClusterModel struct {
	Nodes          int
	PerNodeRate    units.Rate // sustained processing rate of one node
	SerialFraction float64    // job fraction that does not parallelize
}

// LSDFCluster returns the paper's analysis cluster calibrated to the
// 1 TB / 20 min aggregate claim: 60 nodes moving 1e12 bytes in 1200 s
// is ~0.83 GB/s aggregate. With a 2% serial fraction the Amdahl
// speedup at 60 nodes is ~27.5×, so the single-node base rate is
// ~30 MB/s and each of the 60 nodes contributes ~14 MB/s effective —
// modest for 2011 commodity disks, which is exactly the paper's point.
func LSDFCluster() ClusterModel {
	return ClusterModel{
		Nodes:          60,
		PerNodeRate:    units.Rate(30.3 * 1e6),
		SerialFraction: 0.02,
	}
}

// Speedup returns the Amdahl speedup at n nodes relative to one node.
func (m ClusterModel) Speedup(n int) float64 {
	if n <= 0 {
		n = 1
	}
	s := m.SerialFraction
	return 1 / (s + (1-s)/float64(n))
}

// AggregateRate returns the effective processing rate at n nodes.
func (m ClusterModel) AggregateRate(n int) units.Rate {
	return units.Rate(float64(m.PerNodeRate) * m.Speedup(n))
}

// TimeFor returns the modeled completion time of a data-parallel job
// over b bytes at n nodes.
func (m ClusterModel) TimeFor(b units.Bytes, n int) time.Duration {
	return m.AggregateRate(n).TimeFor(b)
}

// Calibrate sets PerNodeRate from a measured run: measured bytes were
// processed in elapsed time on nodes workers. The serial fraction is
// kept; the per-node rate is back-solved through the Amdahl model so
// projections to other node counts stay consistent with the sample.
func (m *ClusterModel) Calibrate(b units.Bytes, elapsed time.Duration, nodes int) {
	if elapsed <= 0 || nodes <= 0 {
		return
	}
	aggregate := float64(b) / elapsed.Seconds()
	m.PerNodeRate = units.Rate(aggregate / m.Speedup(nodes))
}

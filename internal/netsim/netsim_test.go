package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

func twoNode(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New(1)
	n := New(eng)
	n.AddDuplexLink("a", "b", units.Gbps(10), time.Millisecond)
	return eng, n
}

func TestSingleFlowIdeal(t *testing.T) {
	eng, n := twoNode(t)
	var done *Flow
	_, err := n.StartFlow(FlowSpec{
		Src: "a", Dst: "b", Bytes: 1 * units.PB,
		OnComplete: func(f *Flow) { done = f },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if done == nil {
		t.Fatal("flow never completed")
	}
	days := done.Elapsed().Hours() / 24
	// 1 PB at 1.25 GB/s = 9.26 days: the paper's "ideal link" case.
	if days < 9.2 || days > 9.3 {
		t.Fatalf("1PB over ideal 10GbE took %.2f days, want ~9.26", days)
	}
}

func TestProtocolEfficiencyMatchesPaper(t *testing.T) {
	eng, n := twoNode(t)
	var done *Flow
	_, err := n.StartFlow(FlowSpec{
		Src: "a", Dst: "b", Bytes: 1 * units.PB,
		Efficiency: 0.62, // realistic sustained wide-area efficiency
		OnComplete: func(f *Flow) { done = f },
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	days := done.Elapsed().Hours() / 24
	// The paper rounds to "15 days"; 9.26/0.62 = 14.9.
	if days < 14 || days > 16 {
		t.Fatalf("1PB at 62%% efficiency took %.2f days, want ~15", days)
	}
}

func TestFairSharing(t *testing.T) {
	eng, n := twoNode(t)
	var d1, d2 *Flow
	_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 10 * units.GB,
		OnComplete: func(f *Flow) { d1 = f }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 10 * units.GB,
		OnComplete: func(f *Flow) { d2 = f }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if d1 == nil || d2 == nil {
		t.Fatal("flows incomplete")
	}
	// Two equal flows sharing fairly finish together at 2× single time.
	single := units.Gbps(10).TimeFor(10 * units.GB)
	want := 2 * single
	got := d1.Elapsed()
	if ratio := float64(got) / float64(want); ratio < 0.99 || ratio > 1.01 {
		t.Fatalf("shared flow took %v, want ~%v", got, want)
	}
	if d1.Elapsed() != d2.Elapsed() {
		t.Fatalf("equal flows should finish together: %v vs %v", d1.Elapsed(), d2.Elapsed())
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	eng, n := twoNode(t)
	var longDone *Flow
	_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 20 * units.GB,
		OnComplete: func(f *Flow) { longDone = f }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 5 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Long flow: 5 GB at half rate (while short flow runs 10 GB of
	// shared time), then 15 GB at full rate.
	// Short phase lasts until short drains 5GB at 625MB/s = 8s; long
	// has moved 5GB. Remaining 15GB at 1.25GB/s = 12s. Total 20s.
	want := 20 * time.Second
	if d := longDone.Elapsed(); d < want-100*time.Millisecond || d > want+100*time.Millisecond {
		t.Fatalf("long flow took %v, want ~%v", d, want)
	}
}

func TestBottleneckPath(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	n.AddDuplexLink("daq", "router", units.Gbps(10), 0)
	n.AddDuplexLink("router", "storage", units.Gbps(1), 0) // bottleneck
	var done *Flow
	_, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "storage", Bytes: 1 * units.GB,
		OnComplete: func(f *Flow) { done = f }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := units.Gbps(1).TimeFor(1 * units.GB)
	if d := done.Elapsed(); math.Abs(d.Seconds()-want.Seconds()) > 0.01 {
		t.Fatalf("bottleneck transfer took %v, want %v", d, want)
	}
}

func TestMultiHopRouting(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	n.AddDuplexLink("a", "r1", units.Gbps(10), 0)
	n.AddDuplexLink("r1", "r2", units.Gbps(10), 0)
	n.AddDuplexLink("r2", "b", units.Gbps(10), 0)
	f, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: units.GB})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.path) != 3 {
		t.Fatalf("path length = %d, want 3", len(f.path))
	}
	eng.Run()
	if !f.Done() {
		t.Fatal("flow incomplete")
	}
}

func TestNoRoute(t *testing.T) {
	eng := sim.New(1)
	n := New(eng)
	n.AddNode("island")
	n.AddDuplexLink("a", "b", units.Gbps(10), 0)
	if _, err := n.StartFlow(FlowSpec{Src: "a", Dst: "island", Bytes: units.GB}); err == nil {
		t.Fatal("expected no-route error")
	}
	if _, err := n.StartFlow(FlowSpec{Src: "ghost", Dst: "b", Bytes: units.GB}); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestZeroBytesRejected(t *testing.T) {
	_, n := twoNode(t)
	if _, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 0}); err != ErrNoVolume {
		t.Fatalf("err = %v, want ErrNoVolume", err)
	}
}

func TestRateCap(t *testing.T) {
	eng, n := twoNode(t)
	var done *Flow
	_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: units.GB,
		RateCap:    units.Rate(100 * units.MB),
		OnComplete: func(f *Flow) { done = f }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := 10 * time.Second // 1 GB at 100 MB/s
	if d := done.Elapsed(); math.Abs(d.Seconds()-want.Seconds()) > 0.05 {
		t.Fatalf("capped flow took %v, want ~%v", d, want)
	}
}

func TestDuplexIndependence(t *testing.T) {
	eng, n := twoNode(t)
	var ab, ba *Flow
	_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 10 * units.GB,
		OnComplete: func(f *Flow) { ab = f }})
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.StartFlow(FlowSpec{Src: "b", Dst: "a", Bytes: 10 * units.GB,
		OnComplete: func(f *Flow) { ba = f }})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Opposite directions don't contend on a duplex link.
	single := units.Gbps(10).TimeFor(10 * units.GB)
	for _, f := range []*Flow{ab, ba} {
		if ratio := float64(f.Elapsed()) / float64(single); ratio > 1.01 {
			t.Fatalf("duplex flow slowed down: %v vs %v", f.Elapsed(), single)
		}
	}
}

func TestLinkUtilizationAndCarried(t *testing.T) {
	eng, n := twoNode(t)
	_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: 10 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	var ab *Link
	for _, l := range n.Links() {
		if l.Name == "a->b" {
			ab = l
		}
	}
	if ab == nil {
		t.Fatal("missing link")
	}
	if got := ab.CarriedBytes(); got < 10*units.GB-units.KB || got > 10*units.GB+units.KB {
		t.Fatalf("carried = %v, want ~10GB", got)
	}
}

// Property: max-min fairness. k equal flows on one link each get
// capacity/k, and total completion time is k × single-flow time.
func TestFairShareScalingQuick(t *testing.T) {
	f := func(k8 uint8) bool {
		k := int(k8%6) + 1
		eng := sim.New(11)
		n := New(eng)
		n.AddDuplexLink("a", "b", units.Gbps(10), 0)
		lastFinish := time.Duration(0)
		for i := 0; i < k; i++ {
			_, err := n.StartFlow(FlowSpec{Src: "a", Dst: "b", Bytes: units.GB,
				OnComplete: func(f *Flow) {
					if f.Elapsed() > lastFinish {
						lastFinish = f.Elapsed()
					}
				}})
			if err != nil {
				return false
			}
		}
		eng.Run()
		want := time.Duration(k) * units.Gbps(10).TimeFor(units.GB)
		ratio := float64(lastFinish) / float64(want)
		return ratio > 0.99 && ratio < 1.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: work conservation — a single unconstrained flow on an
// otherwise idle path always gets the bottleneck capacity.
func TestWorkConservationQuick(t *testing.T) {
	f := func(capMbps uint16, sizeMB uint16) bool {
		capacity := units.Rate(float64(capMbps%1000+1) * 1e6 / 8)
		size := units.Bytes(int64(sizeMB%1000+1)) * units.MB
		eng := sim.New(13)
		n := New(eng)
		n.AddDuplexLink("x", "y", capacity, 0)
		fl, err := n.StartFlow(FlowSpec{Src: "x", Dst: "y", Bytes: size})
		if err != nil {
			return false
		}
		if math.Abs(float64(fl.Rate())-float64(capacity)) > 1 {
			return false
		}
		eng.Run()
		want := capacity.TimeFor(size)
		return math.Abs(fl.Elapsed().Seconds()-want.Seconds()) < 0.01*want.Seconds()+0.001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

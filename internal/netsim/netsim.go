// Package netsim models the LSDF network (slide 7: dedicated 10 GE
// backbone, redundant routers, direct institute links) as a fluid-flow
// simulator: flows occupy paths of links, share bandwidth max-min
// fairly, and complete when their byte budget drains.
//
// A fluid model is the right substitution for the paper's transfer
// claims: "15 days to transfer 1 PB over an ideal 10 Gb/s link" is
// bandwidth arithmetic plus protocol efficiency, and contention between
// DAQ streams and analysis traffic is captured exactly by max-min fair
// sharing without simulating packets.
package netsim

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// Node is a network endpoint or router.
type Node struct {
	Name string
	// links leaving this node, by destination node name.
	out map[string]*Link
}

// Link is a directed edge with a fixed capacity. Duplex physical links
// are modeled as two directed Links, as Ethernet is full duplex.
type Link struct {
	Name     string
	From, To *Node
	Capacity units.Rate
	Latency  time.Duration

	flows       map[*Flow]struct{}
	carried     float64 // total bytes carried, for utilization reports
	util        *sim.TimeWeighted
	lastRateSum float64
	down        bool
}

// Down reports whether the link is failed.
func (l *Link) Down() bool { return l.down }

// Utilization returns the time-averaged fraction of link capacity used.
func (l *Link) Utilization() float64 {
	if l.Capacity <= 0 {
		return 0
	}
	return l.util.Mean() / float64(l.Capacity)
}

// CarriedBytes returns the total volume the link has carried.
func (l *Link) CarriedBytes() units.Bytes { return units.Bytes(l.carried) }

// Flow is an in-flight transfer.
type Flow struct {
	ID         int
	Src, Dst   string
	Total      units.Bytes
	Efficiency float64    // achievable fraction of raw bandwidth (protocol overhead)
	RateCap    units.Rate // application-level cap, 0 = unlimited

	path       []*Link
	remaining  float64
	rate       float64 // current allocated bytes/sec
	lastUpdate time.Duration
	started    time.Duration
	finished   time.Duration
	done       bool
	stalled    bool // no route exists; rate pinned to zero
	onComplete func(*Flow)
	net        *Network
}

// Rate returns the flow's current max-min allocation.
func (f *Flow) Rate() units.Rate { return units.Rate(f.rate) }

// Remaining returns the bytes not yet delivered.
func (f *Flow) Remaining() units.Bytes { return units.Bytes(math.Ceil(f.remaining)) }

// Done reports whether the flow has completed.
func (f *Flow) Done() bool { return f.done }

// Elapsed returns how long the flow has been (or was) active.
func (f *Flow) Elapsed() time.Duration {
	if f.done {
		return f.finished - f.started
	}
	return f.net.eng.Now() - f.started
}

// Network is a topology plus the set of active flows.
type Network struct {
	eng    *sim.Engine
	nodes  map[string]*Node
	links  []*Link
	flows  map[*Flow]struct{}
	nextID int

	completionEv *sim.Event
	// routeCache memoizes shortest paths; topology changes invalidate it.
	routeCache map[[2]string][]*Link
}

// New creates an empty network bound to a simulation engine.
func New(eng *sim.Engine) *Network {
	return &Network{
		eng:        eng,
		nodes:      make(map[string]*Node),
		flows:      make(map[*Flow]struct{}),
		routeCache: make(map[[2]string][]*Link),
	}
}

// AddNode registers a node; adding an existing name is idempotent.
func (n *Network) AddNode(name string) *Node {
	if nd, ok := n.nodes[name]; ok {
		return nd
	}
	nd := &Node{Name: name, out: make(map[string]*Link)}
	n.nodes[name] = nd
	return nd
}

// AddDuplexLink connects a and b with one directed link each way, each
// at the given capacity (full-duplex Ethernet semantics).
func (n *Network) AddDuplexLink(a, b string, capacity units.Rate, latency time.Duration) (ab, ba *Link) {
	return n.addLink(a, b, capacity, latency), n.addLink(b, a, capacity, latency)
}

func (n *Network) addLink(from, to string, capacity units.Rate, latency time.Duration) *Link {
	clear(n.routeCache) // topology changed; memoized routes are stale
	f, t := n.AddNode(from), n.AddNode(to)
	l := &Link{
		Name:     fmt.Sprintf("%s->%s", from, to),
		From:     f,
		To:       t,
		Capacity: capacity,
		Latency:  latency,
		flows:    make(map[*Flow]struct{}),
		util:     sim.NewTimeWeighted(n.eng),
	}
	f.out[to] = l
	n.links = append(n.links, l)
	return l
}

// Links returns all directed links, in creation order.
func (n *Network) Links() []*Link { return n.links }

// path finds the directed shortest path (hop count) from src to dst by
// BFS, memoizing the result. Static shortest-path routing stands in
// for the facility's redundant routers: the paper's topology is small
// and symmetric.
func (n *Network) path(src, dst string) ([]*Link, error) {
	if src == dst {
		return nil, nil
	}
	if cached, ok := n.routeCache[[2]string{src, dst}]; ok {
		return cached, nil
	}
	s, ok := n.nodes[src]
	if !ok {
		return nil, fmt.Errorf("netsim: unknown node %q", src)
	}
	if _, ok := n.nodes[dst]; !ok {
		return nil, fmt.Errorf("netsim: unknown node %q", dst)
	}
	type hop struct {
		node *Node
		via  *Link
		prev *hop
	}
	visited := map[string]bool{src: true}
	queue := []*hop{{node: s}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.node.Name == dst {
			var path []*Link
			for cur := h; cur.via != nil; cur = cur.prev {
				path = append([]*Link{cur.via}, path...)
			}
			n.routeCache[[2]string{src, dst}] = path
			return path, nil
		}
		// Deterministic neighbor order: iterate links slice, not map.
		for _, l := range n.links {
			if l.From != h.node || l.down || visited[l.To.Name] {
				continue
			}
			visited[l.To.Name] = true
			queue = append(queue, &hop{node: l.To, via: l, prev: h})
		}
	}
	return nil, fmt.Errorf("netsim: no route %s -> %s", src, dst)
}

// FlowSpec describes a transfer to start.
type FlowSpec struct {
	Src, Dst   string
	Bytes      units.Bytes
	Efficiency float64    // 0 => 1.0 (ideal)
	RateCap    units.Rate // 0 => unlimited
	OnComplete func(*Flow)
}

// ErrNoVolume is returned for non-positive transfer sizes.
var ErrNoVolume = errors.New("netsim: flow must carry at least one byte")

// StartFlow begins a transfer at the current virtual time.
func (n *Network) StartFlow(spec FlowSpec) (*Flow, error) {
	if spec.Bytes <= 0 {
		return nil, ErrNoVolume
	}
	path, err := n.path(spec.Src, spec.Dst)
	if err != nil {
		return nil, err
	}
	eff := spec.Efficiency
	if eff <= 0 {
		eff = 1.0
	}
	f := &Flow{
		ID:         n.nextID,
		Src:        spec.Src,
		Dst:        spec.Dst,
		Total:      spec.Bytes,
		Efficiency: eff,
		RateCap:    spec.RateCap,
		path:       path,
		remaining:  float64(spec.Bytes),
		lastUpdate: n.eng.Now(),
		started:    n.eng.Now(),
		onComplete: spec.OnComplete,
		net:        n,
	}
	n.nextID++
	n.flows[f] = struct{}{}
	for _, l := range path {
		l.flows[f] = struct{}{}
	}
	n.advance()
	n.recompute()
	n.scheduleNext()
	return f, nil
}

// ActiveFlows returns the number of in-flight flows.
func (n *Network) ActiveFlows() int { return len(n.flows) }

// advance drains remaining bytes for elapsed time at current rates.
func (n *Network) advance() {
	now := n.eng.Now()
	for f := range n.flows {
		dt := (now - f.lastUpdate).Seconds()
		if dt > 0 {
			moved := f.rate * dt
			if moved > f.remaining {
				moved = f.remaining
			}
			f.remaining -= moved
			// Every link on the path carries every byte of the flow.
			for _, l := range f.path {
				l.carried += moved
			}
		}
		f.lastUpdate = now
	}
}

// recompute runs max-min fair water-filling across links and per-flow
// caps, assigning each active flow its fair rate.
func (n *Network) recompute() {
	type constraint struct {
		cap   float64
		flows []*Flow
	}
	var cons []constraint
	for _, l := range n.links {
		if l.down || len(l.flows) == 0 {
			l.util.Set(0)
			continue
		}
		fs := make([]*Flow, 0, len(l.flows))
		for f := range l.flows {
			fs = append(fs, f)
		}
		// Deterministic order.
		sortFlowsByID(fs)
		cons = append(cons, constraint{cap: float64(l.Capacity), flows: fs})
	}
	// Per-flow caps (protocol efficiency × NIC/app cap) become
	// single-flow constraints. A flow with an empty path (src == dst)
	// is constrained only by its cap.
	active := make([]*Flow, 0, len(n.flows))
	for f := range n.flows {
		active = append(active, f)
	}
	sortFlowsByID(active)
	for _, f := range active {
		if f.stalled {
			// No route: pinned at zero until a link is restored.
			cons = append(cons, constraint{cap: 0, flows: []*Flow{f}})
			continue
		}
		limit := math.Inf(1)
		if f.RateCap > 0 {
			limit = float64(f.RateCap)
		}
		// Efficiency scales the flow's achievable share of any path;
		// model it as a cap at efficiency × min link capacity.
		if len(f.path) > 0 && f.Efficiency < 1 {
			minCap := math.Inf(1)
			for _, l := range f.path {
				minCap = math.Min(minCap, float64(l.Capacity))
			}
			limit = math.Min(limit, f.Efficiency*minCap)
		}
		if !math.IsInf(limit, 1) || len(f.path) == 0 {
			if math.IsInf(limit, 1) {
				// Local copy with no constraint at all: complete at an
				// effectively infinite rate.
				limit = math.MaxFloat64 / 4
			}
			cons = append(cons, constraint{cap: limit, flows: []*Flow{f}})
		}
	}

	rates := make(map[*Flow]float64, len(active))
	frozen := make(map[*Flow]bool, len(active))
	for len(frozen) < len(active) {
		best := -1
		bestShare := math.Inf(1)
		for i, c := range cons {
			unfrozen := 0
			res := c.cap
			for _, f := range c.flows {
				if frozen[f] {
					res -= rates[f]
				} else {
					unfrozen++
				}
			}
			if unfrozen == 0 {
				continue
			}
			share := res / float64(unfrozen)
			if share < 0 {
				share = 0
			}
			if share < bestShare {
				bestShare = share
				best = i
			}
		}
		if best == -1 {
			// Flows crossing no constraint at all (shouldn't happen:
			// caps guarantee at least one) — freeze at infinity guard.
			for _, f := range active {
				if !frozen[f] {
					frozen[f] = true
					rates[f] = math.MaxFloat64 / 4
				}
			}
			break
		}
		for _, f := range cons[best].flows {
			if !frozen[f] {
				frozen[f] = true
				rates[f] = bestShare
			}
		}
	}
	for _, f := range active {
		f.rate = rates[f]
	}
	// Refresh link utilization signals.
	for _, l := range n.links {
		sum := 0.0
		for f := range l.flows {
			sum += f.rate
		}
		l.lastRateSum = sum
		l.util.Set(sum)
	}
}

func sortFlowsByID(fs []*Flow) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j].ID < fs[j-1].ID; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}

// scheduleNext (re)arms the earliest-completion event.
func (n *Network) scheduleNext() {
	if n.completionEv != nil {
		n.eng.Cancel(n.completionEv)
		n.completionEv = nil
	}
	if len(n.flows) == 0 {
		return
	}
	eta := math.Inf(1)
	for f := range n.flows {
		if f.rate <= 0 {
			continue
		}
		t := f.remaining / f.rate
		if t < eta {
			eta = t
		}
	}
	if math.IsInf(eta, 1) {
		return // everything stalled; a topology change must wake us
	}
	delay := time.Duration(eta * float64(time.Second))
	if delay < time.Nanosecond {
		// Sub-nanosecond residues must still advance the clock, or a
		// flow whose remainder exceeds the completion epsilon would
		// re-arm at zero delay forever.
		delay = time.Nanosecond
	}
	n.completionEv = n.eng.Schedule(delay, n.onCompletion)
}

// onCompletion drains time, retires finished flows and re-arms.
func (n *Network) onCompletion() {
	n.completionEv = nil
	n.advance()
	const eps = 0.5 // half a byte of slack absorbs float drift
	var finished []*Flow
	for f := range n.flows {
		if f.remaining <= eps {
			finished = append(finished, f)
		}
	}
	sortFlowsByID(finished)
	for _, f := range finished {
		f.remaining = 0
		f.done = true
		f.finished = n.eng.Now()
		delete(n.flows, f)
		for _, l := range f.path {
			delete(l.flows, f)
		}
	}
	n.recompute()
	n.scheduleNext()
	for _, f := range finished {
		if f.onComplete != nil {
			f.onComplete(f)
		}
	}
}

package netsim

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// BenchmarkFlowChurn measures start-to-completion cycles through the
// max-min solver on the facility topology — the hot loop of every
// ingest scenario.
func BenchmarkFlowChurn(b *testing.B) {
	eng := sim.New(1)
	n := New(eng)
	for _, router := range []string{"r1", "r2"} {
		n.AddDuplexLink("daq", router, units.Gbps(10), time.Millisecond)
		n.AddDuplexLink(router, "ddn", units.Gbps(10), time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: 100 * units.MB}); err != nil {
			b.Fatal(err)
		}
		eng.Run()
	}
}

// BenchmarkMaxMinSolver stresses the water-filling recompute with
// many concurrent flows over shared links.
func BenchmarkMaxMinSolver(b *testing.B) {
	for _, flows := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("flows=%d", flows), func(b *testing.B) {
			eng := sim.New(1)
			n := New(eng)
			n.AddDuplexLink("a", "m", units.Gbps(10), 0)
			n.AddDuplexLink("m", "z", units.Gbps(10), 0)
			for i := 0; i < flows; i++ {
				if _, err := n.StartFlow(FlowSpec{Src: "a", Dst: "z", Bytes: units.PB}); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n.recompute()
			}
		})
	}
}

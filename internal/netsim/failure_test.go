package netsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/units"
)

// redundantTopology mirrors slide 7: two routers between the DAQ edge
// and the storage core.
func redundantTopology(t *testing.T) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.New(1)
	n := New(eng)
	for _, r := range []string{"r1", "r2"} {
		n.AddDuplexLink("daq", r, units.Gbps(10), time.Millisecond)
		n.AddDuplexLink(r, "ddn", units.Gbps(10), time.Millisecond)
	}
	return eng, n
}

func TestRedundantRouterSurvivesFailure(t *testing.T) {
	eng, n := redundantTopology(t)
	var done *Flow
	f, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: 10 * units.GB,
		OnComplete: func(fl *Flow) { done = fl }})
	if err != nil {
		t.Fatal(err)
	}
	// Let half the transfer pass, then fail the router it is using.
	eng.RunUntil(4 * time.Second)
	usedRouter := f.path[0].To.Name
	if err := n.FailDuplexLink("daq", usedRouter); err != nil {
		t.Fatal(err)
	}
	if f.Stalled() {
		t.Fatal("flow stalled despite redundant router")
	}
	eng.Run()
	if done == nil {
		t.Fatal("flow never completed after failover")
	}
	// Total time unchanged: full rate on both paths.
	want := units.Gbps(10).TimeFor(10 * units.GB)
	if math.Abs(done.Elapsed().Seconds()-want.Seconds()) > 0.1 {
		t.Fatalf("failover transfer took %v, want ~%v", done.Elapsed(), want)
	}
}

func TestFlowStallsWithoutAnyPath(t *testing.T) {
	eng, n := redundantTopology(t)
	var done *Flow
	f, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: 10 * units.GB,
		OnComplete: func(fl *Flow) { done = fl }})
	if err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(2 * time.Second)
	if err := n.FailDuplexLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := n.FailDuplexLink("daq", "r2"); err != nil {
		t.Fatal(err)
	}
	if !f.Stalled() {
		t.Fatal("flow should stall with both routers down")
	}
	if f.Rate() != 0 {
		t.Fatalf("stalled flow rate = %v", f.Rate())
	}
	// Time passes; nothing moves.
	eng.RunUntil(20 * time.Second)
	if done != nil {
		t.Fatal("stalled flow completed")
	}
	before := f.Remaining()

	// Restore one path: the flow resumes and finishes.
	if err := n.RestoreLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreLink("r1", "daq"); err != nil {
		t.Fatal(err)
	}
	if f.Stalled() {
		t.Fatal("flow still stalled after restore")
	}
	eng.Run()
	if done == nil {
		t.Fatal("flow never completed after restore")
	}
	if done.Remaining() != 0 || before == 0 {
		t.Fatalf("remaining before/after: %v/%v", before, done.Remaining())
	}
}

func TestFailUnknownLink(t *testing.T) {
	_, n := redundantTopology(t)
	if err := n.FailLink("daq", "nowhere"); err == nil {
		t.Fatal("expected error for unknown link")
	}
}

func TestFailureIsIdempotent(t *testing.T) {
	eng, n := redundantTopology(t)
	if err := n.FailLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := n.FailLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	f, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: units.GB})
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !f.Done() {
		t.Fatal("flow incomplete after restore")
	}
}

func TestRerouteSharesFairly(t *testing.T) {
	eng, n := redundantTopology(t)
	// Two flows, one per router (shortest-path BFS picks r1 for both,
	// so force the split by failing r1 for the second flow's start).
	f1, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: 100 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	// Fail r1: f1 moves to r2.
	if err := n.FailDuplexLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	f2, err := n.StartFlow(FlowSpec{Src: "daq", Dst: "ddn", Bytes: 100 * units.GB})
	if err != nil {
		t.Fatal(err)
	}
	// Both now share the r2 path: each at half rate.
	halfRate := float64(units.Gbps(10)) / 2
	if math.Abs(float64(f1.Rate())-halfRate) > 1 ||
		math.Abs(float64(f2.Rate())-halfRate) > 1 {
		t.Fatalf("rates after failover: %v, %v; want half capacity each", f1.Rate(), f2.Rate())
	}
	// Restoring r1 re-spreads: reconvergence gives both full rate
	// again (each on its shortest path; BFS is deterministic so both
	// pick r1 — accept either full or half, but total is conserved).
	if err := n.RestoreLink("daq", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := n.RestoreLink("r1", "daq"); err != nil {
		t.Fatal(err)
	}
	total := float64(f1.Rate()) + float64(f2.Rate())
	if total < halfRate*2-1 {
		t.Fatalf("total rate after restore = %v", total)
	}
	eng.Run()
	if !f1.Done() || !f2.Done() {
		t.Fatal("flows incomplete")
	}
}

package netsim

// Link failure and re-routing: slide 7 shows redundant routers, so
// losing one path must not interrupt DAQ traffic. FailLink takes a
// directed link down; flows crossing it re-route over surviving paths
// (router reconvergence) or stall at zero rate until RestoreLink.

import "fmt"

// FailLink marks the directed link from->to down and re-routes or
// stalls the flows crossing it.
func (n *Network) FailLink(from, to string) error {
	return n.setLinkState(from, to, true)
}

// RestoreLink brings a failed link back and retries stalled flows.
func (n *Network) RestoreLink(from, to string) error {
	return n.setLinkState(from, to, false)
}

// FailDuplexLink fails both directions between a and b.
func (n *Network) FailDuplexLink(a, b string) error {
	if err := n.FailLink(a, b); err != nil {
		return err
	}
	return n.FailLink(b, a)
}

func (n *Network) setLinkState(from, to string, down bool) error {
	var link *Link
	for _, l := range n.links {
		if l.From.Name == from && l.To.Name == to {
			link = l
			break
		}
	}
	if link == nil {
		return fmt.Errorf("netsim: no link %s->%s", from, to)
	}
	if link.down == down {
		return nil
	}
	n.advance()
	link.down = down
	clear(n.routeCache)

	if down {
		// Evict and re-route flows that crossed the failed link.
		var affected []*Flow
		for f := range link.flows {
			affected = append(affected, f)
		}
		sortFlowsByID(affected)
		for _, f := range affected {
			for _, l := range f.path {
				delete(l.flows, f)
			}
			n.placeFlow(f)
		}
	} else {
		// Retry stalled flows; also re-route active flows in case the
		// restored link shortens their path (routers reconverge to
		// shortest paths).
		var all []*Flow
		for f := range n.flows {
			all = append(all, f)
		}
		sortFlowsByID(all)
		for _, f := range all {
			for _, l := range f.path {
				delete(l.flows, f)
			}
			n.placeFlow(f)
		}
	}
	n.recompute()
	n.scheduleNext()
	return nil
}

// placeFlow routes (or stalls) a flow on the current topology.
func (n *Network) placeFlow(f *Flow) {
	path, err := n.path(f.Src, f.Dst)
	if err != nil {
		f.path = nil
		f.stalled = true
		return
	}
	f.stalled = false
	f.path = path
	for _, l := range path {
		l.flows[f] = struct{}{}
	}
}

// Stalled reports whether the flow currently has no route.
func (f *Flow) Stalled() bool { return f.stalled }

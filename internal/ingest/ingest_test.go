package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

func newPipeline(t *testing.T, cfg Config) (*Pipeline, *adal.Layer, *metadata.Store) {
	t.Helper()
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	return New(layer, meta, cfg), layer, meta
}

func objects(n int) []*Object {
	out := make([]*Object, n)
	for i := range out {
		out[i] = &Object{
			Project: "zebrafish",
			Path:    fmt.Sprintf("/itg/plate1/img%04d.raw", i),
			Data:    strings.NewReader(strings.Repeat("x", 1000+i)),
			Basic:   map[string]string{"well": fmt.Sprintf("A%d", i%12)},
			Tags:    []string{"raw"},
		}
	}
	return out
}

func TestIngestRegistersEverything(t *testing.T) {
	p, layer, meta := newPipeline(t, Config{Workers: 4})
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objects(25)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 25 || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if meta.Count() != 25 {
		t.Fatalf("registered = %d", meta.Count())
	}
	// Every dataset has a checksum matching its stored bytes and the
	// raw tag.
	for _, ds := range meta.Find(metadata.Query{Project: "zebrafish"}) {
		if !ds.HasTag("raw") {
			t.Fatalf("dataset %s missing tag", ds.ID)
		}
		sum, err := layer.Checksum(ds.Path)
		if err != nil {
			t.Fatal(err)
		}
		if sum != ds.Checksum {
			t.Fatalf("checksum mismatch for %s", ds.Path)
		}
	}
	if stats.Throughput() <= 0 {
		t.Fatal("throughput not measured")
	}
}

func TestIngestAbortsOnFirstError(t *testing.T) {
	p, _, meta := newPipeline(t, Config{Workers: 2})
	objs := objects(3)
	objs[1].Data = nil // poison
	_, err := p.Run(context.Background(), &SliceProducer{Objects: objs})
	if err == nil {
		t.Fatal("expected error")
	}
	if meta.Count() >= 3 {
		t.Fatal("pipeline did not stop early")
	}
}

func TestIngestContinuesWithObserver(t *testing.T) {
	var seen []error
	p, _, meta := newPipeline(t, Config{
		Workers: 2,
		OnError: func(_ *Object, err error) { seen = append(seen, err) },
	})
	objs := objects(5)
	objs[2].Data = nil
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objs})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 4 || stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if meta.Count() != 4 {
		t.Fatalf("registered = %d", meta.Count())
	}
	_ = seen
}

func TestDuplicatePathCleansOrphan(t *testing.T) {
	p, layer, meta := newPipeline(t, Config{Workers: 1, OnError: func(*Object, error) {}})
	objs := []*Object{
		{Project: "p", Path: "/dup", Data: strings.NewReader("one")},
	}
	if _, err := p.Run(context.Background(), &SliceProducer{Objects: objs}); err != nil {
		t.Fatal(err)
	}
	// Second ingest to the same logical path: storage-level Create
	// fails (exists), so no orphan and no second registration.
	objs2 := []*Object{{Project: "p", Path: "/dup", Data: strings.NewReader("two")}}
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objs2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if meta.Count() != 1 {
		t.Fatalf("registered = %d", meta.Count())
	}
	r, err := layer.Open("/dup")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(r)
	if string(data) != "one" {
		t.Fatalf("original overwritten: %q", data)
	}
}

func TestRegistrationFailureRemovesStoredObject(t *testing.T) {
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	// Pre-register the logical path so metadata.Create fails while the
	// storage write succeeds.
	if _, err := meta.Create("p", "/clash", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	p := New(layer, meta, Config{Workers: 1, OnError: func(*Object, error) {}})
	objs := []*Object{{Project: "p", Path: "/clash", Data: strings.NewReader("zzz")}}
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objs})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if _, err := layer.Open("/clash"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("orphan not cleaned: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	p, _, _ := newPipeline(t, Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Run(ctx, &SliceProducer{Objects: objects(100)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestProducerError(t *testing.T) {
	p, _, _ := newPipeline(t, Config{Workers: 1})
	boom := errors.New("daq offline")
	_, err := p.Run(context.Background(), &failingProducer{after: 2, err: boom})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

type failingProducer struct {
	after int
	err   error
	i     int
}

func (f *failingProducer) Next() (*Object, error) {
	if f.i >= f.after {
		return nil, f.err
	}
	f.i++
	return &Object{
		Project: "p",
		Path:    fmt.Sprintf("/fp/%d", f.i),
		Data:    bytes.NewReader([]byte("x")),
	}, nil
}

func TestBatchedIngestRegistersEverything(t *testing.T) {
	p, layer, meta := newPipeline(t, Config{Workers: 4, BatchSize: 8})
	const n = 100
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objects(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != n || stats.Errors != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if meta.Count() != n {
		t.Fatalf("registered = %d", meta.Count())
	}
	for _, ds := range meta.Find(metadata.Query{Project: "zebrafish"}) {
		if !ds.HasTag("raw") {
			t.Fatalf("dataset %s missing tag", ds.ID)
		}
		sum, err := layer.Checksum(ds.Path)
		if err != nil {
			t.Fatal(err)
		}
		if sum != ds.Checksum {
			t.Fatalf("checksum mismatch for %s", ds.Path)
		}
	}
	var want units.Bytes
	for i := 0; i < n; i++ {
		want += units.Bytes(1000 + i)
	}
	if stats.Bytes != want {
		t.Fatalf("bytes = %d, want %d", stats.Bytes, want)
	}
}

func TestBatchedRegistrationFailureRemovesStoredObject(t *testing.T) {
	layer := adal.NewLayer()
	if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
		t.Fatal(err)
	}
	meta := metadata.NewStore()
	if _, err := meta.Create("p", "/clash", 1, "", nil); err != nil {
		t.Fatal(err)
	}
	var failed []*Object
	p := New(layer, meta, Config{Workers: 1, BatchSize: 4,
		OnError: func(obj *Object, _ error) { failed = append(failed, obj) }})
	objs := []*Object{
		{Project: "p", Path: "/ok1", Data: strings.NewReader("a")},
		{Project: "p", Path: "/clash", Data: strings.NewReader("zzz")},
		{Project: "p", Path: "/ok2", Data: strings.NewReader("b")},
	}
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objs})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != 2 || stats.Errors != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(failed) != 1 || failed[0].Path != "/clash" {
		t.Fatalf("failed = %+v", failed)
	}
	// The duplicate's stored bytes are rolled back; the good objects
	// in the same batch survive.
	if _, err := layer.Open("/clash"); !errors.Is(err, adal.ErrNotFound) {
		t.Fatalf("orphan not cleaned: %v", err)
	}
	if meta.Count() != 3 { // pre-registered /clash + /ok1 + /ok2
		t.Fatalf("registered = %d", meta.Count())
	}
}

func TestLargeParallelIngest(t *testing.T) {
	p, _, meta := newPipeline(t, Config{Workers: 8})
	const n = 200
	stats, err := p.Run(context.Background(), &SliceProducer{Objects: objects(n)})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != n {
		t.Fatalf("objects = %d", stats.Objects)
	}
	var want units.Bytes
	for i := 0; i < n; i++ {
		want += units.Bytes(1000 + i)
	}
	if stats.Bytes != want {
		t.Fatalf("bytes = %d, want %d", stats.Bytes, want)
	}
	if meta.Count() != n {
		t.Fatalf("registered = %d", meta.Count())
	}
}

// cancellingProducer cancels a context after yielding `after`
// objects, then keeps yielding — modelling a DAQ stream that outlives
// the operator hitting ^C.
type cancellingProducer struct {
	objs   []*Object
	after  int
	cancel context.CancelFunc
	i      int
}

func (p *cancellingProducer) Next() (*Object, error) {
	if p.i == p.after {
		p.cancel()
	}
	if p.i >= len(p.objs) {
		return nil, io.EOF
	}
	o := p.objs[p.i]
	p.i++
	return o, nil
}

// TestCancellationLeavesNoHalfIngestedObject cancels mid-run in both
// register-per-object and batched modes and checks the facility's
// core invariant: no object is stored-but-unregistered or
// registered-but-unstored, and the run stops promptly instead of
// draining the whole stream.
func TestCancellationLeavesNoHalfIngestedObject(t *testing.T) {
	for _, batch := range []int{1, 8} {
		batch := batch
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			p, layer, meta := newPipeline(t, Config{Workers: 4, BatchSize: batch})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			const total = 500
			prod := &cancellingProducer{objs: objects(total), after: 20, cancel: cancel}
			stats, err := p.Run(ctx, prod)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			if stats.Objects >= total {
				t.Fatalf("run drained all %d objects despite cancellation", total)
			}
			// Stored set == registered set, bidirectionally.
			infos, lerr := layer.List("/itg")
			if lerr != nil {
				t.Fatal(lerr)
			}
			stored := make(map[string]bool, len(infos))
			for _, info := range infos {
				stored[info.Path] = true
				if _, ok := meta.ByPath(info.Path); !ok {
					t.Fatalf("%s stored but unregistered", info.Path)
				}
			}
			for _, ds := range meta.Find(metadata.Query{Project: "zebrafish"}) {
				if !stored[ds.Path] {
					t.Fatalf("%s registered but unstored", ds.Path)
				}
			}
			if int64(len(infos)) != stats.Objects {
				t.Fatalf("stored %d objects, stats say %d", len(infos), stats.Objects)
			}
		})
	}
}

// Package ingest is the DAQ-to-facility pipeline (slides 5/7): data
// produced by experiment acquisition systems streams into LSDF
// storage and is simultaneously registered — with checksum and basic
// metadata — in the project metadata DB, because "invisible
// (not-found, no-metadata) data is lost data".
//
// The pipeline is a real concurrent worker pool over the ADAL layer:
// producers hand over objects, workers checksum and store them, and
// every stored object becomes a metadata dataset, optionally tagged
// so rule engines and workflow triggers can react.
//
// Registration exploits the metadata store's sharding: with
// Config.BatchSize > 1 each worker accumulates stored objects and
// registers them through metadata.CreateBatch, which takes one
// shard-lock round per touched shard (tags included) instead of one
// lock round per dataset — the bulk path for high-rate DAQ streams.
// BatchSize 1 preserves the original object-at-a-time behavior and
// its error timing exactly.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

// Object is one unit of acquisition output.
type Object struct {
	Project string
	Path    string // target federated path
	Data    io.Reader
	Basic   map[string]string // experiment-specific basic metadata
	Tags    []string          // applied after registration

	// checksum carries the stored object's digest between the write
	// and the deferred batched registration.
	checksum string
}

// Producer yields objects until io.EOF. Implementations need not be
// safe for concurrent use; the pipeline serializes Next calls.
type Producer interface {
	Next() (*Object, error)
}

// SliceProducer serves a fixed set of objects, mainly for tests.
type SliceProducer struct {
	Objects []*Object
	i       int
}

// Next implements Producer.
func (s *SliceProducer) Next() (*Object, error) {
	if s.i >= len(s.Objects) {
		return nil, io.EOF
	}
	o := s.Objects[s.i]
	s.i++
	return o, nil
}

// Premigrater is implemented by ADAL backends that can eagerly copy
// a freshly stored object toward their cold tier (the tiering
// backend): premigrate-on-ingest makes later watermark migrations a
// cheap stub swap instead of a full copy, at the price of writing
// every ingested byte twice up front.
type Premigrater interface {
	Premigrate(rel string) error
}

// Config tunes a pipeline.
type Config struct {
	Workers int // parallel store+register workers; default 4
	// BatchSize > 1 makes each worker register stored objects in
	// groups of up to BatchSize through metadata.CreateBatch (one
	// shard-lock round per shard). Default 1: register per object.
	BatchSize int
	// Premigrate switches the pipeline from write-through (default:
	// bytes land on the hot tier only) to premigrate-on-ingest: after
	// an object is stored and registered, the pipeline asks the
	// backend serving its path — when it implements Premigrater — to
	// copy it cold. Premigration failures are advisory (the object is
	// already stored, registered and resident; the next watermark
	// scan retries the copy): they are reported to OnError when set
	// and never abort the run or count toward Stats.Errors.
	Premigrate bool
	// OnError, when non-nil, observes per-object failures; the
	// pipeline continues. When nil, the first failure aborts the run.
	OnError func(obj *Object, err error)
}

// Stats summarizes one pipeline run.
type Stats struct {
	Objects  int64
	Bytes    units.Bytes
	Errors   int64
	Duration time.Duration
}

// Throughput returns the mean ingest rate of the run.
func (s Stats) Throughput() units.Rate {
	if s.Duration <= 0 {
		return 0
	}
	return units.Rate(float64(s.Bytes) / s.Duration.Seconds())
}

// Pipeline couples the ADAL layer with the metadata store.
type Pipeline struct {
	layer *adal.Layer
	meta  *metadata.Store
	cfg   Config
}

// New creates a pipeline.
func New(layer *adal.Layer, meta *metadata.Store, cfg Config) *Pipeline {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 1
	}
	return &Pipeline{layer: layer, meta: meta, cfg: cfg}
}

// Run drains the producer. It returns the run statistics and the
// first error when no OnError observer is installed.
func (p *Pipeline) Run(ctx context.Context, prod Producer) (Stats, error) {
	start := time.Now()
	var stats Stats
	jobs := make(chan *Object)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	fail := func(obj *Object, err error) {
		atomic.AddInt64(&stats.Errors, 1)
		if p.cfg.OnError != nil {
			p.cfg.OnError(obj, err)
			return
		}
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}

	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if p.cfg.BatchSize > 1 {
				p.runBatched(cctx, jobs, &stats, fail)
				return
			}
			for obj := range jobs {
				// After cancellation, drain without starting new
				// stores: unprocessed objects are neither stored nor
				// registered, so the store/metadata invariant holds.
				if cctx.Err() != nil {
					continue
				}
				n, err := p.ingestOne(obj)
				if err != nil {
					fail(obj, err)
					continue
				}
				atomic.AddInt64(&stats.Objects, 1)
				atomic.AddInt64((*int64)(&stats.Bytes), int64(n))
			}
		}()
	}

feed:
	for {
		obj, err := prod.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			fail(nil, fmt.Errorf("ingest: producer: %w", err))
			break
		}
		select {
		case jobs <- obj:
		case <-cctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	stats.Duration = time.Since(start)
	if firstErr != nil {
		return stats, firstErr
	}
	if err := ctx.Err(); err != nil {
		return stats, err
	}
	return stats, nil
}

// runBatched is one worker's loop in batched mode: store each
// object's bytes immediately, then register up to BatchSize of them
// in one metadata.CreateBatch round. A registration failure rolls
// back that object's stored bytes, so the facility never holds
// invisible data, batched or not. On cancellation the worker stops
// storing new objects but still flushes the batch it has already
// stored — those bytes are on disk, so they must become visible.
func (p *Pipeline) runBatched(ctx context.Context, jobs <-chan *Object, stats *Stats, fail func(*Object, error)) {
	type pending struct {
		obj  *Object
		size units.Bytes
	}
	buf := make([]pending, 0, p.cfg.BatchSize)
	specs := make([]metadata.CreateSpec, 0, p.cfg.BatchSize)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		specs = specs[:0]
		for _, pd := range buf {
			specs = append(specs, metadata.CreateSpec{
				Project:  pd.obj.Project,
				Path:     pd.obj.Path,
				Size:     pd.size,
				Checksum: pd.obj.checksum,
				Basic:    pd.obj.Basic,
				Tags:     pd.obj.Tags,
			})
		}
		for i, r := range p.meta.CreateBatch(specs) {
			if r.Err != nil {
				_ = p.layer.Remove(buf[i].obj.Path)
				fail(buf[i].obj, fmt.Errorf("ingest: register %s: %w", buf[i].obj.Path, r.Err))
				continue
			}
			atomic.AddInt64(&stats.Objects, 1)
			atomic.AddInt64((*int64)(&stats.Bytes), int64(buf[i].size))
			p.premigrate(buf[i].obj)
		}
		buf = buf[:0]
	}
	for obj := range jobs {
		if ctx.Err() != nil {
			continue // cancelled: drain without storing
		}
		if obj.Data == nil {
			fail(obj, errors.New("ingest: object without data"))
			continue
		}
		n, sum, err := p.layer.WriteChecksummed(obj.Path, obj.Data)
		if err != nil {
			fail(obj, fmt.Errorf("ingest: store %s: %w", obj.Path, err))
			continue
		}
		obj.checksum = sum
		buf = append(buf, pending{obj: obj, size: n})
		if len(buf) >= p.cfg.BatchSize {
			flush()
		}
	}
	flush()
}

// ingestOne stores and registers a single object.
func (p *Pipeline) ingestOne(obj *Object) (units.Bytes, error) {
	if obj.Data == nil {
		return 0, errors.New("ingest: object without data")
	}
	n, sum, err := p.layer.WriteChecksummed(obj.Path, obj.Data)
	if err != nil {
		return 0, fmt.Errorf("ingest: store %s: %w", obj.Path, err)
	}
	ds, err := p.meta.Create(obj.Project, obj.Path, n, sum, obj.Basic)
	if err != nil {
		// Storage succeeded but registration failed: remove the orphan
		// so the facility never holds invisible data.
		_ = p.layer.Remove(obj.Path)
		return 0, fmt.Errorf("ingest: register %s: %w", obj.Path, err)
	}
	for _, tag := range obj.Tags {
		if err := p.meta.Tag(ds.ID, tag); err != nil {
			return 0, fmt.Errorf("ingest: tag %s: %w", obj.Path, err)
		}
	}
	p.premigrate(obj)
	return n, nil
}

// premigrate asks the backend serving a stored-and-registered
// object's path to copy it to its cold tier (Config.Premigrate).
// Failures are advisory — see the Config field comment.
func (p *Pipeline) premigrate(obj *Object) {
	if !p.cfg.Premigrate {
		return
	}
	b, rel, err := p.layer.Resolve(obj.Path)
	if err != nil {
		return
	}
	pm, ok := b.(Premigrater)
	if !ok {
		return
	}
	if err := pm.Premigrate(rel); err != nil && p.cfg.OnError != nil {
		p.cfg.OnError(obj, fmt.Errorf("ingest: premigrate %s: %w", obj.Path, err))
	}
}

package ingest

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"repro/internal/adal"
	"repro/internal/metadata"
	"repro/internal/units"
)

// BenchmarkPipeline measures the real ingest path — checksum, store,
// register, tag — per 256 KiB microscope frame.
func BenchmarkPipeline(b *testing.B) {
	for _, cfg := range []Config{
		{Workers: 1}, {Workers: 4}, {Workers: 8},
		{Workers: 4, BatchSize: 16}, {Workers: 8, BatchSize: 16},
	} {
		b.Run(fmt.Sprintf("workers=%d/batch=%d", cfg.Workers, max(cfg.BatchSize, 1)), func(b *testing.B) {
			layer := adal.NewLayer()
			if err := layer.Mount("/", adal.NewMemFS("store")); err != nil {
				b.Fatal(err)
			}
			meta := metadata.NewStore()
			p := New(layer, meta, cfg)
			frame := make([]byte, 256*units.KiB)
			state := uint64(0x9E3779B97F4A7C15)
			for i := range frame {
				state ^= state >> 12
				state ^= state << 25
				state ^= state >> 27
				frame[i] = byte(state)
			}
			b.SetBytes(int64(len(frame)))
			objs := make([]*Object, b.N)
			for i := range objs {
				objs[i] = &Object{
					Project: "bench",
					Path:    fmt.Sprintf("/b/%09d", i),
					Data:    bytes.NewReader(frame),
					Tags:    []string{"raw"},
				}
			}
			b.ResetTimer()
			if _, err := p.Run(context.Background(), &SliceProducer{Objects: objs}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

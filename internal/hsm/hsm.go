// Package hsm is the discrete-event hierarchical storage manager: it
// models the LSDF's "transparent access over background storage and
// technology changes" (slide 6) at petabyte scale in virtual time —
// files live on disk while hot, migrate to tape when the disk fills
// past a watermark, and are recalled transparently on access.
//
// The placement states and the migration policy are shared with
// internal/tiering, which implements the same life cycle on the live
// concurrent data path (real bytes through the ADAL mount table);
// this package keeps the simulation-scale counterpart in lockstep
// with it by construction.
package hsm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/tiering"
	"repro/internal/units"
)

// State is a file's placement state — the tiering package's type, so
// simulated and live placements are the same vocabulary.
type State = tiering.State

// Placement states. Premigrated files have a tape copy but still
// occupy disk; Migrated files are tape-only (a zero-size stub remains
// in the namespace).
const (
	Resident    = tiering.Resident
	Premigrated = tiering.Premigrated
	Migrated    = tiering.Migrated
)

// ErrUnknownFile is returned for operations on unmanaged names.
var ErrUnknownFile = errors.New("hsm: unknown file")

// ErrExists is returned when storing an already managed name.
var ErrExists = errors.New("hsm: file exists")

// File is one managed object.
type File struct {
	Name       string
	Size       units.Bytes
	Created    time.Duration
	LastAccess time.Duration
	State      State
	Cartridge  string // tape location once (pre)migrated

	migrating bool
	recalling bool
	// recall waiters queue while a recall is in flight
	waiters []func(error)
}

// Policy controls migration — the tiering package's type, so one
// watermark/age vocabulary configures both the simulated and the
// live tier.
type Policy = tiering.Policy

// DefaultPolicy is a conventional 85/70 watermark pair with hourly
// scans and LTO-5-sized (1.5 TB) cartridges.
func DefaultPolicy() Policy { return tiering.DefaultPolicy() }

// Manager couples one disk volume with the tape library.
type Manager struct {
	eng     *sim.Engine
	disk    *storage.Array
	volume  string
	lib     *tape.Library
	pol     Policy
	files   map[string]*File
	stop    func()
	curCart string
	cartSeq int

	// stats
	migratedFiles uint64
	migratedBytes units.Bytes
	recalls       uint64
	recalledBytes units.Bytes
	recallLatency sim.Sample
}

// New creates a manager over an existing array volume and starts the
// periodic migration scan.
func New(eng *sim.Engine, disk *storage.Array, volume string, lib *tape.Library, pol Policy) (*Manager, error) {
	if _, ok := disk.Volume(volume); !ok {
		return nil, fmt.Errorf("%w: %q", storage.ErrNoVolume, volume)
	}
	m := &Manager{
		eng:    eng,
		disk:   disk,
		volume: volume,
		lib:    lib,
		pol:    pol,
		files:  make(map[string]*File),
	}
	if pol.ScanInterval > 0 {
		m.stop = eng.Every(pol.ScanInterval, m.Scan)
	}
	return m, nil
}

// Close stops the periodic scan.
func (m *Manager) Close() {
	if m.stop != nil {
		m.stop()
		m.stop = nil
	}
}

// Store places a new file on disk. If the disk is full it runs an
// emergency migration scan once and retries.
func (m *Manager) Store(name string, size units.Bytes) error {
	if _, ok := m.files[name]; ok {
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	if err := m.disk.Alloc(m.volume, size); err != nil {
		if !errors.Is(err, storage.ErrFull) {
			return err
		}
		m.Scan() // emergency pass; frees space asynchronously
		if err := m.disk.Alloc(m.volume, size); err != nil {
			return err
		}
	}
	m.files[name] = &File{
		Name:       name,
		Size:       size,
		Created:    m.eng.Now(),
		LastAccess: m.eng.Now(),
		State:      Resident,
	}
	return nil
}

// Lookup returns a snapshot of a file's record.
func (m *Manager) Lookup(name string) (File, bool) {
	f, ok := m.files[name]
	if !ok {
		return File{}, false
	}
	return *f, true
}

// Files returns the number of managed files.
func (m *Manager) Files() int { return len(m.files) }

// Access touches a file; done fires once the bytes are disk-resident.
// Resident and premigrated files complete immediately; migrated files
// trigger a tape recall. A premigrated file that is accessed becomes
// plain resident again (its tape copy is treated as stale, matching
// write-once LSDF data that may be reprocessed in place).
func (m *Manager) Access(name string, done func(error)) {
	f, ok := m.files[name]
	if !ok {
		m.eng.Schedule(0, func() { done(fmt.Errorf("%w: %q", ErrUnknownFile, name)) })
		return
	}
	f.LastAccess = m.eng.Now()
	if f.State != Migrated {
		m.eng.Schedule(0, func() { done(nil) })
		return
	}
	f.waiters = append(f.waiters, done)
	if f.recalling {
		return
	}
	f.recalling = true
	start := m.eng.Now()
	if err := m.disk.Alloc(m.volume, f.Size); err != nil {
		m.finishRecall(f, err)
		return
	}
	m.lib.Read(f.Cartridge, f.Size, func(err error) {
		if err != nil {
			_ = m.disk.Free(m.volume, f.Size)
			m.finishRecall(f, err)
			return
		}
		f.State = Premigrated
		m.recalls++
		m.recalledBytes += f.Size
		m.recallLatency.ObserveDuration(m.eng.Now() - start)
		m.finishRecall(f, nil)
	})
}

func (m *Manager) finishRecall(f *File, err error) {
	f.recalling = false
	ws := f.waiters
	f.waiters = nil
	for _, w := range ws {
		w(err)
	}
}

// Delete removes a file, releasing its disk space if resident.
func (m *Manager) Delete(name string) error {
	f, ok := m.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownFile, name)
	}
	if f.State != Migrated {
		if err := m.disk.Free(m.volume, f.Size); err != nil {
			return err
		}
	}
	delete(m.files, name)
	return nil
}

// Scan runs one migration pass: while utilization exceeds the high
// watermark, the oldest eligible resident files are copied to tape and
// their disk space freed, until the projection drops below the low
// watermark. Copies complete in virtual time; disk space frees when
// the tape write finishes.
func (m *Manager) Scan() {
	if m.disk.Utilization() <= m.pol.HighWatermark {
		return
	}
	target := units.Bytes(float64(m.disk.Capacity) * m.pol.LowWatermark)
	toFree := m.disk.Used() - target

	var candidates []*File
	for _, f := range m.files {
		if f.State == Resident && !f.migrating &&
			m.eng.Now()-f.Created >= m.pol.MinAge {
			candidates = append(candidates, f)
		}
	}
	// Oldest access first; name breaks ties for determinism.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].LastAccess != candidates[j].LastAccess {
			return candidates[i].LastAccess < candidates[j].LastAccess
		}
		return candidates[i].Name < candidates[j].Name
	})
	var planned units.Bytes
	for _, f := range candidates {
		if planned >= toFree {
			break
		}
		planned += f.Size
		m.migrate(f)
	}
}

func (m *Manager) migrate(f *File) {
	f.migrating = true
	cart := m.pickCartridge(f.Size)
	m.lib.Write(cart, f.Size, func(err error) {
		f.migrating = false
		if err != nil {
			return // stays resident; next scan retries on a fresh cartridge
		}
		// Freeing can race with a concurrent recall only for Migrated
		// files; f was Resident for the whole copy, so this is safe.
		if ferr := m.disk.Free(m.volume, f.Size); ferr != nil {
			return
		}
		f.State = Migrated
		f.Cartridge = cart
		m.migratedFiles++
		m.migratedBytes += f.Size
	})
}

// pickCartridge returns the current fill cartridge, opening a new one
// when the next write would not fit.
func (m *Manager) pickCartridge(size units.Bytes) string {
	if m.curCart != "" {
		if c, ok := m.lib.Cartridge(m.curCart); ok && c.FreeSpace() >= size {
			return m.curCart
		}
	}
	m.cartSeq++
	id := fmt.Sprintf("hsm-%04d", m.cartSeq)
	capacity := m.pol.CartridgeSize
	if capacity < size {
		capacity = size // oversized file gets a dedicated cartridge
	}
	m.lib.AddCartridge(id, capacity)
	m.curCart = id
	return id
}

// Stats is a snapshot of manager counters.
type Stats struct {
	MigratedFiles   uint64
	MigratedBytes   units.Bytes
	Recalls         uint64
	RecalledBytes   units.Bytes
	AvgRecallSec    float64
	P95RecallSec    float64
	DiskUtilization float64
}

// Stats returns a snapshot of the manager counters.
func (m *Manager) Stats() Stats {
	return Stats{
		MigratedFiles:   m.migratedFiles,
		MigratedBytes:   m.migratedBytes,
		Recalls:         m.recalls,
		RecalledBytes:   m.recalledBytes,
		AvgRecallSec:    m.recallLatency.Mean(),
		P95RecallSec:    m.recallLatency.Quantile(0.95),
		DiskUtilization: m.disk.Utilization(),
	}
}

package hsm

import (
	"errors"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/units"
)

func newManager(t *testing.T, diskCap units.Bytes, pol Policy) (*sim.Engine, *storage.Array, *tape.Library, *Manager) {
	t.Helper()
	eng := sim.New(1)
	disk := storage.NewArray(eng, "disk", diskCap, units.Rate(5*units.GB))
	if _, err := disk.CreateVolume("data", 0); err != nil {
		t.Fatal(err)
	}
	lib := tape.New(eng, tape.DefaultConfig())
	m, err := New(eng, disk, "data", lib, pol)
	if err != nil {
		t.Fatal(err)
	}
	return eng, disk, lib, m
}

func quickPolicy() Policy {
	p := DefaultPolicy()
	p.MinAge = 0
	p.ScanInterval = time.Hour
	return p
}

func TestStoreAndLookup(t *testing.T) {
	_, disk, _, m := newManager(t, 100*units.GB, quickPolicy())
	if err := m.Store("f1", 10*units.GB); err != nil {
		t.Fatal(err)
	}
	f, ok := m.Lookup("f1")
	if !ok || f.State != Resident || f.Size != 10*units.GB {
		t.Fatalf("lookup = %+v, %v", f, ok)
	}
	if disk.Used() != 10*units.GB {
		t.Fatalf("disk used = %v", disk.Used())
	}
	if err := m.Store("f1", units.GB); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate store err = %v", err)
	}
}

func TestMigrationOnWatermark(t *testing.T) {
	eng, disk, lib, m := newManager(t, 100*units.GB, quickPolicy())
	// Fill to 90% (> high watermark 85%).
	for i := 0; i < 9; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(2 * time.Hour) // one scheduled scan + tape writes
	st := m.Stats()
	if st.MigratedFiles == 0 {
		t.Fatal("no files migrated despite exceeding watermark")
	}
	if disk.Utilization() > 0.71 {
		t.Fatalf("utilization after migration = %f, want <= low watermark", disk.Utilization())
	}
	if lib.Stats().BytesIn != st.MigratedBytes {
		t.Fatalf("tape holds %v, manager says %v", lib.Stats().BytesIn, st.MigratedBytes)
	}
	// Oldest files must be the migrated ones (f0 migrated first).
	f0, _ := m.Lookup(fileName(0))
	if f0.State != Migrated {
		t.Fatalf("f0 state = %v, want migrated", f0.State)
	}
}

func fileName(i int) string {
	return "file-" + string(rune('a'+i))
}

func TestNoMigrationBelowWatermark(t *testing.T) {
	eng, _, _, m := newManager(t, 100*units.GB, quickPolicy())
	if err := m.Store("f", 50*units.GB); err != nil {
		t.Fatal(err)
	}
	eng.RunUntil(3 * time.Hour)
	if st := m.Stats(); st.MigratedFiles != 0 {
		t.Fatalf("migrated %d files below watermark", st.MigratedFiles)
	}
}

func TestMinAgeRespected(t *testing.T) {
	pol := quickPolicy()
	pol.MinAge = 24 * time.Hour
	eng, _, _, m := newManager(t, 100*units.GB, pol)
	for i := 0; i < 9; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(2 * time.Hour)
	if st := m.Stats(); st.MigratedFiles != 0 {
		t.Fatalf("migrated %d files younger than MinAge", st.MigratedFiles)
	}
	// After MinAge passes, migration proceeds.
	eng.RunUntil(30 * time.Hour)
	if st := m.Stats(); st.MigratedFiles == 0 {
		t.Fatal("no migration after files aged past MinAge")
	}
}

func TestRecallOnAccess(t *testing.T) {
	eng, _, _, m := newManager(t, 100*units.GB, quickPolicy())
	for i := 0; i < 9; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(5 * time.Hour)
	f0, _ := m.Lookup(fileName(0))
	if f0.State != Migrated {
		t.Skip("migration did not pick f0; policy changed")
	}
	var accessErr error
	recalled := false
	start := eng.Now()
	m.Access(fileName(0), func(err error) {
		accessErr = err
		recalled = true
	})
	eng.Run()
	if !recalled || accessErr != nil {
		t.Fatalf("recall: done=%v err=%v", recalled, accessErr)
	}
	f0, _ = m.Lookup(fileName(0))
	if f0.State != Premigrated {
		t.Fatalf("state after recall = %v", f0.State)
	}
	st := m.Stats()
	if st.Recalls != 1 || st.RecalledBytes != 10*units.GB {
		t.Fatalf("stats = %+v", st)
	}
	if eng.Now() == start {
		t.Fatal("recall must take virtual time (tape mechanics)")
	}
}

func TestConcurrentRecallCoalesces(t *testing.T) {
	eng, _, _, m := newManager(t, 100*units.GB, quickPolicy())
	for i := 0; i < 9; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(5 * time.Hour)
	f0, _ := m.Lookup(fileName(0))
	if f0.State != Migrated {
		t.Skip("f0 not migrated")
	}
	doneCount := 0
	for i := 0; i < 3; i++ {
		m.Access(fileName(0), func(err error) {
			if err != nil {
				t.Errorf("access: %v", err)
			}
			doneCount++
		})
	}
	eng.Run()
	if doneCount != 3 {
		t.Fatalf("done callbacks = %d, want 3", doneCount)
	}
	if st := m.Stats(); st.Recalls != 1 {
		t.Fatalf("recalls = %d, want 1 (coalesced)", st.Recalls)
	}
}

func TestAccessResidentImmediate(t *testing.T) {
	eng, _, _, m := newManager(t, 100*units.GB, quickPolicy())
	if err := m.Store("f", units.GB); err != nil {
		t.Fatal(err)
	}
	var err error
	called := false
	m.Access("f", func(e error) { called = true; err = e })
	eng.Run()
	if !called || err != nil {
		t.Fatalf("resident access: called=%v err=%v", called, err)
	}
}

func TestAccessUnknown(t *testing.T) {
	eng, _, _, m := newManager(t, 100*units.GB, quickPolicy())
	var got error
	m.Access("nope", func(e error) { got = e })
	eng.Run()
	if !errors.Is(got, ErrUnknownFile) {
		t.Fatalf("err = %v", got)
	}
}

func TestDelete(t *testing.T) {
	_, disk, _, m := newManager(t, 100*units.GB, quickPolicy())
	if err := m.Store("f", 10*units.GB); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete("f"); err != nil {
		t.Fatal(err)
	}
	if disk.Used() != 0 {
		t.Fatalf("disk used after delete = %v", disk.Used())
	}
	if err := m.Delete("f"); !errors.Is(err, ErrUnknownFile) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestEmergencyScanOnFullStore(t *testing.T) {
	pol := quickPolicy()
	pol.ScanInterval = 0 // no periodic scan; only the emergency path
	eng, _, _, m := newManager(t, 100*units.GB, pol)
	for i := 0; i < 10; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	// Disk is 100% full. Another store triggers the emergency scan,
	// but space frees only after tape writes complete, so this store
	// still fails...
	err := m.Store("late", 10*units.GB)
	if err == nil {
		t.Fatal("store into full disk should fail until migration completes")
	}
	// ...and once the migration drains, a retry succeeds.
	eng.Run()
	if err := m.Store("late", 10*units.GB); err != nil {
		t.Fatalf("store after migration: %v", err)
	}
}

func TestCartridgeRotation(t *testing.T) {
	pol := quickPolicy()
	pol.CartridgeSize = 15 * units.GB // forces a new cartridge every 1-2 files
	eng, _, lib, m := newManager(t, 100*units.GB, pol)
	for i := 0; i < 9; i++ {
		if err := m.Store(fileName(i), 10*units.GB); err != nil {
			t.Fatal(err)
		}
	}
	eng.RunUntil(5 * time.Hour)
	if st := m.Stats(); st.MigratedFiles < 2 {
		t.Fatalf("migrated = %d, want >= 2", st.MigratedFiles)
	}
	if got := len(lib.Cartridges()); got < 2 {
		t.Fatalf("cartridges = %d, want >= 2 (rotation)", got)
	}
}

package obs

import (
	"bytes"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition for a small
// registry — format drift breaks scrapers silently, so it's a golden.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	c := r.Counter("lsdf_test_requests_total", "Total requests.")
	c.Add(7)
	g := r.Gauge("lsdf_test_inflight", "In-flight requests.")
	g.Set(3)
	r.GaugeFunc("lsdf_test_sampled", "Sampled value.", func() int64 { return 42 })
	v := r.CounterVec("lsdf_test_by_tenant_total", "Per-tenant requests.", "tenant")
	v.With("bio").Add(2)
	v.With("alpha").Add(5)
	h := r.Histogram("lsdf_test_latency_ns", "Request latency.")
	h.Observe(1)    // bucket len=1, upper 1
	h.Observe(3)    // bucket len=2, upper 3
	h.Observe(1000) // bucket len=10, upper 1023

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lsdf_test_by_tenant_total Per-tenant requests.
# TYPE lsdf_test_by_tenant_total counter
lsdf_test_by_tenant_total{tenant="alpha"} 5
lsdf_test_by_tenant_total{tenant="bio"} 2
# HELP lsdf_test_inflight In-flight requests.
# TYPE lsdf_test_inflight gauge
lsdf_test_inflight 3
# HELP lsdf_test_latency_ns Request latency.
# TYPE lsdf_test_latency_ns histogram
lsdf_test_latency_ns_bucket{le="1"} 1
lsdf_test_latency_ns_bucket{le="3"} 2
lsdf_test_latency_ns_bucket{le="1023"} 3
lsdf_test_latency_ns_bucket{le="+Inf"} 3
lsdf_test_latency_ns_sum 1004
lsdf_test_latency_ns_count 3
# HELP lsdf_test_requests_total Total requests.
# TYPE lsdf_test_requests_total counter
lsdf_test_requests_total 7
# HELP lsdf_test_sampled Sampled value.
# TYPE lsdf_test_sampled gauge
lsdf_test_sampled 42
`
	if got := buf.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promLine matches every legal line of the exposition: comments or
// name{label="v",...} value.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// ParseablePrometheus validates that every non-empty line of text is
// well-formed exposition. Shared with experiment E19.
func ParseablePrometheus(text string) (lines int, bad []string) {
	for _, ln := range strings.Split(text, "\n") {
		if ln == "" {
			continue
		}
		lines++
		if !promLine.MatchString(ln) {
			bad = append(bad, ln)
		}
	}
	return lines, bad
}

func TestExpositionParseable(t *testing.T) {
	r := New()
	r.RegisterRuntimeMetrics()
	r.Counter("lsdf_a_total", "A.").Add(1)
	r.HistogramVec("lsdf_b_ns", "B.", "op").With("read").Observe(12345)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	n, bad := ParseablePrometheus(buf.String())
	if n == 0 {
		t.Fatal("no output")
	}
	if len(bad) > 0 {
		t.Errorf("unparseable lines: %q", bad)
	}
}

// TestConcurrentUpdatesDuringExposition is the -race stress: many
// writers hammering counters/histograms while scrapers render and
// snapshot. Correctness bar: no race, and final counts add up.
func TestConcurrentUpdatesDuringExposition(t *testing.T) {
	r := New()
	c := r.Counter("lsdf_stress_total", "stress")
	h := r.Histogram("lsdf_stress_ns", "stress")
	v := r.CounterVec("lsdf_stress_vec_total", "stress", "k")
	hv := r.HistogramVec("lsdf_stress_hv_ns", "stress", "k")
	keys := []string{"a", "b", "c", "d"}

	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Scrapers run until writers finish.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = r.Snapshot()
			}
		}()
	}
	var writerWG sync.WaitGroup
	for i := 0; i < writers; i++ {
		writerWG.Add(1)
		go func(i int) {
			defer writerWG.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				h.Observe(int64(j))
				v.With(keys[j%len(keys)]).Inc()
				hv.With(keys[(i+j)%len(keys)]).Observe(int64(i + j))
			}
		}(i)
	}
	writerWG.Wait()
	close(stop)
	wg.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Errorf("hist count = %d, want %d", got, writers*perWriter)
	}
	var vecSum int64
	for _, k := range keys {
		vecSum += v.With(k).Value()
	}
	if vecSum != writers*perWriter {
		t.Errorf("vec sum = %d, want %d", vecSum, writers*perWriter)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform on [0, 100µs): p99 should land in
	// the right power-of-two bucket (65536..131071 ns).
	for i := 0; i < 1000; i++ {
		h.Observe(int64(i * 100)) // 0..99900 ns
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	p50, p99 := s.P50(), s.P99()
	if p50 <= 0 || p50 > 65535 {
		t.Errorf("p50 = %d, want within (0, 65535]", p50)
	}
	if p99 < 65536 || p99 > 131071 {
		t.Errorf("p99 = %d, want in [65536, 131071]", p99)
	}
	if p99 < p50 {
		t.Errorf("p99 %d < p50 %d", p99, p50)
	}
	if m := s.Mean(); m < 40000 || m > 60000 {
		t.Errorf("mean = %d, want ~49950", m)
	}
	// Edge cases.
	var empty Histogram
	if q := empty.Snapshot().P99(); q != 0 {
		t.Errorf("empty p99 = %d", q)
	}
	var neg Histogram
	neg.Observe(-5)
	if got := neg.Snapshot().Count; got != 1 {
		t.Errorf("negative observe lost: count=%d", got)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := New()
	a := r.Counter("lsdf_x_total", "x")
	b := r.Counter("lsdf_x_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("lsdf_x_total", "x") // type conflict must panic
}

//go:build race

package obs

// raceEnabled reports whether the race detector is instrumenting
// this build; timing gates skip, since instrumented atomics run ~10×
// slower and would trip the pinned bounds spuriously.
const raceEnabled = true

package obs

import (
	"runtime"
	"time"
)

func now() time.Time { return time.Now() }

// RegisterRuntimeMetrics adds goroutine/heap/GC gauges for a
// process's debug listener. Sampled at scrape time; ReadMemStats
// briefly stops the world, which is fine at scrape frequency.
func (r *Registry) RegisterRuntimeMetrics() {
	r.GaugeFunc("lsdf_go_goroutines", "Number of live goroutines.", func() int64 {
		return int64(runtime.NumGoroutine())
	})
	r.GaugeFunc("lsdf_go_heap_bytes", "Bytes of allocated heap objects.", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.HeapAlloc)
	})
	r.CounterFunc("lsdf_go_gc_total", "Completed GC cycles.", func() int64 {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		return int64(m.NumGC)
	})
}

package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries the trace ID across HTTP hops: set by clients
// to adopt a trace, echoed by the gateway so callers can fetch the
// recorded breakdown from /v1/debug/traces.
const TraceHeader = "X-LSDF-Trace"

// maxSpans bounds the per-trace span list; a runaway fan-out drops
// spans (counted in Dropped) instead of growing without bound.
const maxSpans = 512

// SpanData is one finished (or still-open, DurNs == 0 and End unset)
// span. It doubles as the wire type: workers ship task-attempt spans
// to the master inside CompleteRequest.
type SpanData struct {
	Name   string `json:"name"`
	Start  int64  `json:"start_unix_ns"`
	DurNs  int64  `json:"dur_ns"`
	Detail string `json:"detail,omitempty"`
}

// TraceData is the recorded form of one trace: a flat span list
// under a root. Flat (not a tree) keeps the wire and ring simple;
// span names encode the layer (gateway.auth, cache.fill, mr.reduce).
type TraceData struct {
	ID      string     `json:"id"`
	Root    string     `json:"root"`
	Start   time.Time  `json:"start"`
	Spans   []SpanData `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`

	mu   sync.Mutex
	open int32 // spans started but not ended
}

// add records a finished span. Safe for concurrent use.
func (t *TraceData) add(s SpanData) {
	t.mu.Lock()
	if len(t.Spans) < maxSpans {
		t.Spans = append(t.Spans, s)
	} else {
		t.Dropped++
	}
	t.mu.Unlock()
}

// AddSpans appends externally recorded spans (worker task attempts
// arriving via the completion RPC).
func (t *TraceData) AddSpans(spans []SpanData) {
	t.mu.Lock()
	for _, s := range spans {
		if len(t.Spans) < maxSpans {
			t.Spans = append(t.Spans, s)
		} else {
			t.Dropped++
		}
	}
	t.mu.Unlock()
}

// TakeSpans returns a copy of the recorded spans — how a worker
// ships a detached attempt trace home in the completion RPC.
// Nil-safe: an untraced attempt yields nil.
func (t *TraceData) TakeSpans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]SpanData, len(t.Spans))
	copy(out, t.Spans)
	t.mu.Unlock()
	return out
}

// snapshot copies the span list for serving.
func (t *TraceData) snapshot() TraceView {
	t.mu.Lock()
	spans := make([]SpanData, len(t.Spans))
	copy(spans, t.Spans)
	dropped := t.Dropped
	open := t.open
	t.mu.Unlock()
	return TraceView{ID: t.ID, Root: t.Root, Start: t.Start, Spans: spans, Dropped: dropped, OpenSpans: int(open)}
}

// TraceView is the JSON shape served at /v1/debug/traces.
type TraceView struct {
	ID        string     `json:"id"`
	Root      string     `json:"root"`
	Start     time.Time  `json:"start"`
	Spans     []SpanData `json:"spans"`
	Dropped   int        `json:"dropped,omitempty"`
	OpenSpans int        `json:"open_spans,omitempty"`
}

// Span is a live, in-progress span. A nil *Span is valid and inert,
// so instrumented code never branches on "is tracing on".
type Span struct {
	trace  *TraceData
	name   string
	start  time.Time
	detail string
	done   atomic.Bool
}

// End finishes the span, recording its duration into the trace.
// Safe to call on nil and idempotent.
func (s *Span) End() {
	if s == nil || !s.done.CompareAndSwap(false, true) {
		return
	}
	s.trace.add(SpanData{
		Name:   s.name,
		Start:  s.start.UnixNano(),
		DurNs:  int64(time.Since(s.start)),
		Detail: s.detail,
	})
	s.trace.mu.Lock()
	s.trace.open--
	s.trace.mu.Unlock()
}

// Annotate attaches a short detail string (site name, byte count)
// shown in the trace view. Last call wins; nil-safe.
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	s.detail = fmt.Sprintf(format, args...)
}

type ctxKey struct{}

// ContextWithTrace returns ctx carrying the trace, so StartSpan
// calls downstream record into it.
func ContextWithTrace(ctx context.Context, t *TraceData) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t)
}

func traceFrom(ctx context.Context) *TraceData {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*TraceData)
	return t
}

// TraceID returns the trace ID carried by ctx, or "" if untraced.
// Used to stamp outgoing RPCs (X-LSDF-Trace, JobSpec.Trace).
func TraceID(ctx context.Context) string {
	if t := traceFrom(ctx); t != nil {
		return t.ID
	}
	return ""
}

// StartSpan opens a named span on the trace carried by ctx. When ctx
// carries no trace it returns nil, which every Span method accepts —
// the untraced hot path pays one context lookup.
func StartSpan(ctx context.Context, name string) *Span {
	t := traceFrom(ctx)
	if t == nil {
		return nil
	}
	return t.startSpan(name)
}

func (t *TraceData) startSpan(name string) *Span {
	t.mu.Lock()
	t.open++
	t.mu.Unlock()
	return &Span{trace: t, name: name, start: time.Now()}
}

// StartSpanOn opens a span directly on a TraceData — used by workers
// that build a detached trace for one task attempt and ship its
// spans home in the completion RPC.
func StartSpanOn(t *TraceData, name string) *Span {
	if t == nil {
		return nil
	}
	return t.startSpan(name)
}

// id generation: a process-random prefix plus an atomic sequence
// keeps IDs unique across the fleet without coordination.
var (
	idPrefix = fmt.Sprintf("%08x", rand.Uint32())
	idSeq    atomic.Int64
)

// NewTraceID mints a fresh globally-unlikely-to-collide trace ID.
func NewTraceID() string {
	return fmt.Sprintf("%s-%06x", idPrefix, idSeq.Add(1))
}

package obs

import (
	"context"
	"testing"
	"time"
)

// BenchmarkCounterHot and BenchmarkHistogramHot are the pinned
// instrumentation-cost benches: CI fails if they regress past the
// bounds in TestHotPathOverheadBound. In-container reference:
// counter ~5-10 ns/op, histogram ~15-30 ns/op.

func BenchmarkCounterHot(b *testing.B) {
	r := New()
	c := r.Counter("lsdf_bench_total", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramHot(b *testing.B) {
	r := New()
	h := r.Histogram("lsdf_bench_ns", "bench")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		var v int64
		for pb.Next() {
			v += 1023
			h.Observe(v)
		}
	})
}

func BenchmarkStartSpanUntraced(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan(ctx, "x").End()
	}
}

func BenchmarkSpanTraced(b *testing.B) {
	tr := NewTracer(4)
	td := tr.StartTrace("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpanOn(td, "s").End()
	}
}

// TestHotPathOverheadBound is the CI gate behind the < 2% read-path
// regression budget: single-threaded counter and histogram updates
// must stay in the low tens of nanoseconds. Bounds are ~5× the
// measured in-container cost to absorb CI noise while still
// catching a lock or allocation sneaking onto the hot path.
func TestHotPathOverheadBound(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("race detector skews atomic timings ~10×")
	}
	const (
		counterBoundNs = 75.0
		histBoundNs    = 150.0
	)
	measure := func(f func(n int)) float64 {
		best := 1e18
		for trial := 0; trial < 3; trial++ {
			const n = 2_000_000
			start := time.Now()
			f(n)
			per := float64(time.Since(start)) / n
			if per < best {
				best = per
			}
		}
		return best
	}
	r := New()
	c := r.Counter("lsdf_gate_total", "gate")
	h := r.Histogram("lsdf_gate_ns", "gate")
	cNs := measure(func(n int) {
		for i := 0; i < n; i++ {
			c.Inc()
		}
	})
	hNs := measure(func(n int) {
		for i := 0; i < n; i++ {
			h.Observe(int64(i))
		}
	})
	t.Logf("counter %.1f ns/op (bound %.0f), histogram %.1f ns/op (bound %.0f)", cNs, counterBoundNs, hNs, histBoundNs)
	if cNs > counterBoundNs {
		t.Errorf("Counter.Inc %.1f ns/op exceeds pinned bound %.0f ns", cNs, counterBoundNs)
	}
	if hNs > histBoundNs {
		t.Errorf("Histogram.Observe %.1f ns/op exceeds pinned bound %.0f ns", hNs, histBoundNs)
	}
}

package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numBuckets covers int64 nanoseconds: bucket i counts observations
// v with bits.Len64(v) == i, i.e. upper bound 2^i - 1 ns. Bucket 0
// holds v <= 0, bucket 63 holds everything above ~146 years.
const numBuckets = 64

// Histogram is a log-bucketed (powers of two) latency histogram.
// Observe is ~3 atomic adds and a bits.Len64 — cheap enough for hot
// paths at microsecond scale. Values are nanoseconds by convention
// (the *_ns naming scheme), but any non-negative int64 works.
type Histogram struct {
	buckets [numBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := bits.Len64(uint64(max64(v, 0)))
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveSince records the elapsed time since start, in nanoseconds.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// HistSnapshot is a consistent-enough view of a histogram: counts
// are loaded bucket by bucket, so a concurrent Observe may appear in
// Count but not yet a bucket (or vice versa); quantiles clamp.
type HistSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum_ns"`
	Buckets [numBuckets]int64 `json:"-"`
}

// Snapshot loads the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return int64(1)<<62 - 1 + int64(1)<<62 // MaxInt64
	}
	return int64(1)<<i - 1
}

// Quantile returns an estimate of the q-th quantile (0 < q <= 1)
// from the bucket counts, interpolating linearly inside the target
// bucket. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = bucketUpper(i-1) + 1
			}
			hi := bucketUpper(i)
			frac := (rank - float64(prev)) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
	}
	return bucketUpper(numBuckets - 1)
}

// P50, P90, P99 are the quantile snapshots the debug surfaces show.
func (s HistSnapshot) P50() int64 { return s.Quantile(0.50) }
func (s HistSnapshot) P90() int64 { return s.Quantile(0.90) }
func (s HistSnapshot) P99() int64 { return s.Quantile(0.99) }

// Mean returns the average observed value, 0 if empty.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

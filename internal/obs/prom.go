package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families sorted by name, series
// within a family sorted by label value. Sampled (Func) series are
// evaluated here.
func (r *Registry) WritePrometheus(w io.Writer) error {
	ser, fams := r.sortedSeries()
	var lastFam string
	for _, s := range ser {
		f := fams[s.family]
		if f.name != lastFam {
			if f.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
				return err
			}
			lastFam = f.name
		}
		lbl := ""
		if f.label != "" {
			lbl = fmt.Sprintf("{%s=%q}", f.label, s.labelValue)
		}
		if s.hist != nil {
			if err := writeHist(w, f, s, lbl); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, lbl, s.read()); err != nil {
			return err
		}
	}
	return nil
}

// writeHist renders one histogram series as cumulative _bucket lines
// plus _sum and _count. Empty power-of-two buckets are elided (the
// cumulative le semantics stay correct); a final le="+Inf" is always
// written.
func writeHist(w io.Writer, f *family, s *series, lbl string) error {
	snap := s.hist.Snapshot()
	// le labels combine with the optional family label.
	inner := ""
	if f.label != "" {
		inner = fmt.Sprintf("%s=%q,", f.label, s.labelValue)
	}
	var cum int64
	for i, c := range snap.Buckets {
		if c == 0 {
			continue
		}
		cum += c
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%d\"} %d\n", f.name, inner, bucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", f.name, inner, snap.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", f.name, lbl, snap.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, lbl, snap.Count)
	return err
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// MetricPoint is one series in a JSON snapshot (databrowser, lsdfctl
// local mode). Histograms carry quantiles instead of a raw value.
type MetricPoint struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
	Type  string `json:"type"`
	Value int64  `json:"value,omitempty"`
	Count int64  `json:"count,omitempty"`
	P50   int64  `json:"p50_ns,omitempty"`
	P90   int64  `json:"p90_ns,omitempty"`
	P99   int64  `json:"p99_ns,omitempty"`
}

// Snapshot evaluates every series into a JSON-friendly list, in the
// same stable order as the text exposition.
func (r *Registry) Snapshot() []MetricPoint {
	ser, fams := r.sortedSeries()
	out := make([]MetricPoint, 0, len(ser))
	for _, s := range ser {
		f := fams[s.family]
		p := MetricPoint{Name: f.name, Label: s.labelValue, Type: f.typ}
		if s.hist != nil {
			snap := s.hist.Snapshot()
			p.Count = snap.Count
			p.P50, p.P90, p.P99 = snap.P50(), snap.P90(), snap.P99()
		} else {
			p.Value = s.read()
		}
		out = append(out, p)
	}
	return out
}

// Handler serves the text exposition over HTTP (the /metrics
// endpoint on lsdfd, lsdf-worker and the databrowser).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

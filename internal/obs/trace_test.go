package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestTraceRingProperties is the property test from the issue:
// bounded memory, newest-wins eviction, and no span leaks after
// completion — evicted traces must vanish from the by-ID index.
func TestTraceRingProperties(t *testing.T) {
	const capacity = 16
	tr := NewTracer(capacity)

	var ids []string
	for i := 0; i < 10*capacity; i++ {
		td := tr.StartTrace(fmt.Sprintf("op-%d", i))
		ids = append(ids, td.ID)
		sp := StartSpanOn(td, "work")
		sp.End()

		// Invariant: ring never exceeds capacity.
		if n := tr.Len(); n > capacity {
			t.Fatalf("ring holds %d > cap %d after %d traces", n, capacity, i+1)
		}
	}

	// Newest-wins: the last `capacity` traces are retained in order,
	// everything older is gone from both ring and index.
	recent := tr.Recent(0)
	if len(recent) != capacity {
		t.Fatalf("retained %d, want %d", len(recent), capacity)
	}
	for i, v := range recent {
		want := ids[len(ids)-1-i]
		if v.ID != want {
			t.Errorf("recent[%d] = %s, want %s", i, v.ID, want)
		}
	}
	for _, old := range ids[:len(ids)-capacity] {
		if _, ok := tr.Lookup(old); ok {
			t.Errorf("evicted trace %s still resolvable (leak)", old)
		}
	}

	// No open spans after completion.
	for _, v := range recent {
		if v.OpenSpans != 0 {
			t.Errorf("trace %s has %d open spans after End", v.ID, v.OpenSpans)
		}
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTracer(4)
	td := tr.StartTrace("burst")
	for i := 0; i < maxSpans+100; i++ {
		StartSpanOn(td, "s").End()
	}
	v, _ := tr.Lookup(td.ID)
	if len(v.Spans) != maxSpans {
		t.Errorf("spans = %d, want cap %d", len(v.Spans), maxSpans)
	}
	if v.Dropped != 100 {
		t.Errorf("dropped = %d, want 100", v.Dropped)
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewTracer(4)
	td := tr.StartTrace("req")
	ctx := ContextWithTrace(context.Background(), td)
	if got := TraceID(ctx); got != td.ID {
		t.Fatalf("TraceID = %q, want %q", got, td.ID)
	}
	sp := StartSpan(ctx, "child")
	sp.Annotate("site=%s", "gridka")
	sp.End()
	sp.End() // idempotent

	v, _ := tr.Lookup(td.ID)
	if len(v.Spans) != 1 || v.Spans[0].Name != "child" || v.Spans[0].Detail != "site=gridka" {
		t.Fatalf("spans = %+v", v.Spans)
	}

	// Untraced context: everything no-ops.
	if sp := StartSpan(context.Background(), "x"); sp != nil {
		t.Error("StartSpan on untraced ctx returned non-nil")
	}
	if id := TraceID(context.Background()); id != "" {
		t.Errorf("TraceID on untraced ctx = %q", id)
	}
	var nilSpan *Span
	nilSpan.End()
	nilSpan.Annotate("ok")
}

func TestAdoptedAndLateSpans(t *testing.T) {
	tr := NewTracer(8)

	// Client-supplied ID is adopted when well-formed...
	td := tr.StartTraceID("client-chosen.id_1", "GET")
	if td.ID != "client-chosen.id_1" {
		t.Errorf("adopted ID = %q", td.ID)
	}
	// ...rejected when hostile.
	bad := tr.StartTraceID("evil\"} 1\nfake_metric 9", "GET")
	if bad.ID == "evil\"} 1\nfake_metric 9" {
		t.Error("hostile ID adopted verbatim")
	}
	// Duplicate IDs get a fresh one rather than aliasing.
	dup := tr.StartTraceID("client-chosen.id_1", "GET")
	if dup.ID == td.ID {
		t.Error("duplicate ID aliased an existing trace")
	}

	// SpanFor creates the trace on demand (master side of a job).
	sp := tr.SpanFor("job-trace-1", "master.job")
	sp.End()
	// Late spans attach by ID (worker completion RPC).
	tr.Attach("job-trace-1", []SpanData{{Name: "mr.map", DurNs: 1000}})
	v, ok := tr.Lookup("job-trace-1")
	if !ok || len(v.Spans) != 2 {
		t.Fatalf("job trace spans = %+v", v.Spans)
	}
	// Attach to an evicted/unknown trace is a silent no-op.
	tr.Attach("never-seen", []SpanData{{Name: "x"}})
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(8)
	td := tr.StartTrace("GET /v1/objects")
	StartSpanOn(td, "auth").End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces?n=5", nil))
	var views []TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &views); err != nil {
		t.Fatalf("list: %v (%s)", err, rec.Body.String())
	}
	if len(views) != 1 || views[0].Root != "GET /v1/objects" {
		t.Fatalf("views = %+v", views)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces?id="+td.ID, nil))
	var one TraceView
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil {
		t.Fatal(err)
	}
	if len(one.Spans) != 1 || one.Spans[0].Name != "auth" {
		t.Fatalf("trace = %+v", one)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/debug/traces?id=missing", nil))
	if rec.Code != 404 {
		t.Errorf("missing trace status = %d", rec.Code)
	}
}

// TestTracerConcurrent exercises the ring under -race: concurrent
// trace starts, span records, late attaches and snapshots.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				td := tr.StartTrace("op")
				sp := StartSpanOn(td, "s")
				sp.End()
				tr.Attach(td.ID, []SpanData{{Name: "late", DurNs: 1}})
				tr.Recent(5)
				tr.SpanFor(td.ID, "extra").End()
			}
		}(g)
	}
	wg.Wait()
	if n := tr.Len(); n > 32 {
		t.Errorf("ring overflow: %d", n)
	}
}

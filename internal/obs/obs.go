// Package obs is the facility-wide observability plane: one metrics
// registry, one tracer, shared by every subsystem.
//
// The paper's facility serves many communities from one shared
// storage/compute plane; operating that requires per-subsystem,
// per-tenant visibility as a first-class service. This package
// provides the three legs:
//
//   - a metrics registry — typed counters, gauges and log-bucketed
//     latency histograms with Prometheus text-format exposition.
//     Subsystems either own live instruments (the gateway's request
//     counters and latency histograms) or are absorbed by sampling:
//     CounterFunc/GaugeFunc metrics read a subsystem's existing
//     atomic counters at exposition time, so the DFS, read cache,
//     replication engine, compute master and metadata WAL export
//     without a write-path tax.
//
//   - request tracing — a trace minted at the front door (or adopted
//     from the X-LSDF-Trace header), carried through context.Context,
//     recording named spans (auth, cache lookup, WAN fill, shuffle
//     fetch, reduce) into a bounded in-memory ring of recent traces.
//     Remote spans (worker task attempts) ride completion RPCs back
//     and attach to their trace by ID.
//
//   - runtime profiling hooks — goroutine/heap/GC gauges registered
//     by RegisterRuntimeMetrics, next to net/http/pprof on the
//     daemons' debug listeners.
//
// Hot-path cost is the design constraint: Counter.Add is one atomic
// add, Histogram.Observe is a bits.Len64 and three atomic adds —
// low tens of nanoseconds, pinned by TestHotPathOverheadBound.
//
// Metric naming: lsdf_<subsystem>_<metric>[_total] with at most one
// label, e.g. lsdf_gateway_requests_total{tenant="bio"}. Durations
// are nanoseconds in *_ns histograms. See DESIGN.md §13.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is
// usable; registry-created counters expose themselves at scrape.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Metric types, as exposed in Prometheus TYPE comments.
const (
	TypeCounter   = "counter"
	TypeGauge     = "gauge"
	TypeHistogram = "histogram"
)

// series is one exposed time series: a family member with an
// optional single label pair.
type series struct {
	family     string // metric family name
	labelValue string // "" = unlabeled
	read       func() int64
	hist       *Histogram
}

// family groups series of one name under shared HELP/TYPE.
type family struct {
	name  string
	help  string
	typ   string
	label string // label key for vec families ("" = scalar)
}

// Registry holds every registered metric and renders them in
// Prometheus text format. All methods are safe for concurrent use;
// instrument updates (Counter.Add etc.) never take the registry
// lock.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	series   map[string]*series // family + "\x00" + labelValue
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{
		families: make(map[string]*family),
		series:   make(map[string]*series),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

func (r *Registry) familyLocked(name, help, typ, label string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, label: label}
		r.families[name] = f
		return f
	}
	if f.typ != typ || f.label != label {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s/%q (was %s/%q)",
			name, typ, label, f.typ, f.label))
	}
	return f
}

func seriesKey(name, labelValue string) string { return name + "\x00" + labelValue }

// Counter registers (or returns the existing) scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.counterSeries(name, help, "", "")
}

func (r *Registry) counterSeries(name, help, label, value string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, TypeCounter, label)
	key := seriesKey(name, value)
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{}
	r.counters[key] = c
	r.series[key] = &series{family: name, labelValue: value, read: c.Value}
	return c
}

// Gauge registers (or returns the existing) scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, TypeGauge, "")
	key := seriesKey(name, "")
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[key] = g
	r.series[key] = &series{family: name, read: g.Value}
	return g
}

// CounterFunc registers a sampled counter: fn is called at scrape
// time. This is how existing subsystem counters (atomic fields read
// through their own snapshot methods) join the registry without any
// hot-path change. Re-registering replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() int64) {
	r.funcSeries(name, help, TypeCounter, fn)
}

// GaugeFunc registers a sampled gauge (occupancy, queue depth,
// goroutine count): fn is called at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	r.funcSeries(name, help, TypeGauge, fn)
}

func (r *Registry) funcSeries(name, help, typ string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, typ, "")
	key := seriesKey(name, "")
	r.series[key] = &series{family: name, read: fn}
}

// Histogram registers (or returns the existing) scalar histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.histSeries(name, help, "", "")
}

func (r *Registry) histSeries(name, help, label, value string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.familyLocked(name, help, TypeHistogram, label)
	key := seriesKey(name, value)
	if h, ok := r.hists[key]; ok {
		return h
	}
	h := &Histogram{}
	r.hists[key] = h
	r.series[key] = &series{family: name, labelValue: value, hist: h}
	return h
}

// CounterVec is a counter family keyed by one label.
type CounterVec struct {
	r          *Registry
	name, help string
	label      string
	mu         sync.RWMutex
	byValue    map[string]*Counter
}

// CounterVec registers a one-label counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	r.mu.Lock()
	r.familyLocked(name, help, TypeCounter, label)
	r.mu.Unlock()
	return &CounterVec{r: r, name: name, help: help, label: label, byValue: make(map[string]*Counter)}
}

// With returns the counter for one label value, creating it on first
// use. The returned pointer is cached by callers on their hot paths.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.byValue[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	c = v.r.counterSeries(v.name, v.help, v.label, value)
	v.mu.Lock()
	v.byValue[value] = c
	v.mu.Unlock()
	return c
}

// HistogramVec is a histogram family keyed by one label.
type HistogramVec struct {
	r          *Registry
	name, help string
	label      string
	mu         sync.RWMutex
	byValue    map[string]*Histogram
}

// HistogramVec registers a one-label histogram family.
func (r *Registry) HistogramVec(name, help, label string) *HistogramVec {
	r.mu.Lock()
	r.familyLocked(name, help, TypeHistogram, label)
	r.mu.Unlock()
	return &HistogramVec{r: r, name: name, help: help, label: label, byValue: make(map[string]*Histogram)}
}

// With returns the histogram for one label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.byValue[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	h = v.r.histSeries(v.name, v.help, v.label, value)
	v.mu.Lock()
	v.byValue[value] = h
	v.mu.Unlock()
	return h
}

// sortedSeries snapshots the series list ordered by family name then
// label value — the stable exposition order the golden test pins.
func (r *Registry) sortedSeries() ([]*series, map[string]*family) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		out = append(out, s)
	}
	fams := make(map[string]*family, len(r.families))
	for n, f := range r.families {
		fams[n] = f
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].labelValue < out[j].labelValue
	})
	return out, fams
}

package obs

import (
	"net/http"
	"net/http/pprof"
)

// DebugHandler mounts the standard operator surface for a debug
// listener: net/http/pprof under /debug/pprof/, the registry's
// Prometheus exposition at /metrics, and — when tr is non-nil — the
// trace ring at /v1/debug/traces. lsdfd and lsdf-worker serve this on
// their -debug-addr; it must never be exposed on a tenant-facing
// address (no auth).
func DebugHandler(reg *Registry, tr *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	if tr != nil {
		mux.Handle("/v1/debug/traces", tr.Handler())
	}
	return mux
}

package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
)

// Tracer owns the bounded ring of recent traces. Memory is capped:
// at most `capacity` traces, each at most maxSpans spans; starting
// trace capacity+1 evicts the oldest (newest wins). Evicted traces
// drop out of the by-ID index too, so completed work leaks nothing.
type Tracer struct {
	mu   sync.Mutex
	cap  int
	ring []*TraceData // FIFO: ring[0] is oldest
	byID map[string]*TraceData
}

// NewTracer creates a tracer retaining the last capacity traces
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{cap: capacity, byID: make(map[string]*TraceData)}
}

// StartTrace mints a new trace with a fresh ID and enters it in the
// ring. root names the operation (e.g. "GET /v1/objects").
func (tr *Tracer) StartTrace(root string) *TraceData {
	return tr.StartTraceID(NewTraceID(), root)
}

// maxClientTraceID bounds adopted IDs so a hostile client can't
// balloon ring memory through the X-LSDF-Trace header.
const maxClientTraceID = 64

// StartTraceID enters a trace under a caller-chosen ID (adopting a
// client's X-LSDF-Trace). Invalid or duplicate IDs get a fresh one.
func (tr *Tracer) StartTraceID(id, root string) *TraceData {
	if tr == nil {
		return nil
	}
	if id == "" || len(id) > maxClientTraceID || !validTraceID(id) {
		id = NewTraceID()
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, dup := tr.byID[id]; dup {
		id = NewTraceID()
	}
	t := &TraceData{ID: id, Root: root, Start: now()}
	tr.insertLocked(t)
	return t
}

// SpanFor opens a span on the trace with the given ID, creating the
// trace if the ring doesn't hold it (the master starting a job span
// for a trace minted at the gateway). Returns nil for empty IDs.
func (tr *Tracer) SpanFor(id, name string) *Span {
	if tr == nil || id == "" {
		return nil
	}
	tr.mu.Lock()
	t, ok := tr.byID[id]
	if !ok {
		if len(id) > maxClientTraceID || !validTraceID(id) {
			tr.mu.Unlock()
			return nil
		}
		t = &TraceData{ID: id, Root: name, Start: now()}
		tr.insertLocked(t)
	}
	tr.mu.Unlock()
	return t.startSpan(name)
}

// Attach appends externally recorded spans to the trace with the
// given ID, if the ring still holds it (it may have been evicted —
// that's fine, the spans are simply dropped).
func (tr *Tracer) Attach(id string, spans []SpanData) {
	if tr == nil || id == "" || len(spans) == 0 {
		return
	}
	tr.mu.Lock()
	t := tr.byID[id]
	tr.mu.Unlock()
	if t != nil {
		t.AddSpans(spans)
	}
}

// Lookup returns a snapshot of one trace, or false.
func (tr *Tracer) Lookup(id string) (TraceView, bool) {
	if tr == nil {
		return TraceView{}, false
	}
	tr.mu.Lock()
	t := tr.byID[id]
	tr.mu.Unlock()
	if t == nil {
		return TraceView{}, false
	}
	return t.snapshot(), true
}

// Recent returns snapshots of the most recent n traces, newest
// first. n <= 0 means all retained.
func (tr *Tracer) Recent(n int) []TraceView {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	if n <= 0 || n > len(tr.ring) {
		n = len(tr.ring)
	}
	picked := make([]*TraceData, n)
	for i := 0; i < n; i++ {
		picked[i] = tr.ring[len(tr.ring)-1-i]
	}
	tr.mu.Unlock()
	out := make([]TraceView, n)
	for i, t := range picked {
		out[i] = t.snapshot()
	}
	return out
}

// Len reports how many traces the ring currently holds.
func (tr *Tracer) Len() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.ring)
}

func (tr *Tracer) insertLocked(t *TraceData) {
	if len(tr.ring) >= tr.cap {
		evict := len(tr.ring) - tr.cap + 1
		for _, old := range tr.ring[:evict] {
			delete(tr.byID, old.ID)
		}
		tr.ring = append(tr.ring[:0], tr.ring[evict:]...)
	}
	tr.ring = append(tr.ring, t)
	tr.byID[t.ID] = t
}

func validTraceID(id string) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// Handler serves the trace ring as JSON: GET ?n=K for the K newest,
// GET ?id=X for one trace. This is the /v1/debug/traces endpoint.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if id := r.URL.Query().Get("id"); id != "" {
			v, ok := tr.Lookup(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				_ = json.NewEncoder(w).Encode(map[string]string{"error": "trace not found"})
				return
			}
			_ = json.NewEncoder(w).Encode(v)
			return
		}
		n := 20
		if s := r.URL.Query().Get("n"); s != "" {
			if v, err := strconv.Atoi(s); err == nil {
				n = v
			}
		}
		_ = json.NewEncoder(w).Encode(tr.Recent(n))
	})
}

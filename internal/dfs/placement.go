package dfs

import "repro/internal/units"

// choosePlacement implements the HDFS-2011 default block placement:
//
//  1. first replica on the writer's node when it is a datanode with
//     space, otherwise a random node;
//  2. second replica on a node in a different rack;
//  3. third replica on a different node in the second replica's rack;
//  4. any further replicas on random nodes.
//
// Every choice excludes nodes already holding the block and nodes
// without space. If the cluster cannot satisfy the full replication
// factor the block is placed on as many nodes as possible (like HDFS,
// which writes under-replicated rather than failing).
// Callers must hold c.mu.
func (c *Cluster) choosePlacement(clientHint string, sz units.Bytes) []string {
	want := c.cfg.Replication
	chosen := make([]string, 0, want)
	taken := make(map[string]bool)

	pick := func(pred func(*DataNode) bool) *DataNode {
		// Collect candidates in deterministic order, then pick one with
		// the seeded RNG so placement spreads but replays identically.
		var cands []*DataNode
		for _, id := range c.order {
			dn := c.nodes[id]
			if taken[id] || !dn.hasSpace(sz) {
				continue
			}
			if pred != nil && !pred(dn) {
				continue
			}
			cands = append(cands, dn)
		}
		if len(cands) == 0 {
			return nil
		}
		return cands[c.rng.Intn(len(cands))]
	}

	add := func(dn *DataNode) {
		chosen = append(chosen, dn.ID)
		taken[dn.ID] = true
	}

	// Replica 1: writer-local if possible.
	if clientHint != "" {
		if dn, ok := c.nodes[clientHint]; ok && dn.hasSpace(sz) {
			add(dn)
		}
	}
	if len(chosen) == 0 {
		if dn := pick(nil); dn != nil {
			add(dn)
		} else {
			return nil
		}
	}
	firstRack := c.nodes[chosen[0]].Rack

	// Replica 2: different rack (fall back to any node if single-rack).
	if want >= 2 {
		dn := pick(func(d *DataNode) bool { return d.Rack != firstRack })
		if dn == nil {
			dn = pick(nil)
		}
		if dn != nil {
			add(dn)
		}
	}

	// Replica 3: same rack as replica 2, different node.
	if want >= 3 && len(chosen) >= 2 {
		secondRack := c.nodes[chosen[1]].Rack
		dn := pick(func(d *DataNode) bool { return d.Rack == secondRack })
		if dn == nil {
			dn = pick(nil)
		}
		if dn != nil {
			add(dn)
		}
	}

	// Remaining replicas: anywhere.
	for len(chosen) < want {
		dn := pick(nil)
		if dn == nil {
			break
		}
		add(dn)
	}
	return chosen
}

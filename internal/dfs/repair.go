package dfs

import "fmt"

// KillNode marks a datanode dead, as a heartbeat timeout would, and
// runs the re-replication pass for every block it held. It returns
// the number of block replicas restored.
func (c *Cluster) KillNode(id string) (int, error) {
	c.mu.Lock()
	dn, ok := c.nodes[id]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("dfs: unknown datanode %q", id)
	}
	lost := dn.kill()
	lostSet := make(map[BlockID]bool, len(lost))
	for _, b := range lost {
		lostSet[b] = true
	}
	// Strip the dead node from replica lists.
	type job struct {
		meta *blockMeta
	}
	var jobs []job
	for _, f := range c.files {
		for _, b := range f.blocks {
			if !lostSet[b.id] {
				continue
			}
			keep := b.replicas[:0]
			for _, r := range b.replicas {
				if r != id {
					keep = append(keep, r)
				}
			}
			b.replicas = keep
			if len(b.replicas) < c.cfg.Replication {
				jobs = append(jobs, job{meta: b})
			}
		}
	}
	c.mu.Unlock()

	restored := 0
	for _, j := range jobs {
		if c.reReplicate(j.meta) {
			restored++
		}
	}
	return restored, nil
}

// ReviveNode brings a dead node back empty (its disk is considered
// reformatted, as HDFS treats rejoining nodes with stale block maps).
func (c *Cluster) ReviveNode(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	dn, ok := c.nodes[id]
	if !ok {
		return fmt.Errorf("dfs: unknown datanode %q", id)
	}
	dn.mu.Lock()
	dn.alive.Store(true)
	dn.blocks = make(map[BlockID]*replica)
	dn.usedByte.Store(0)
	dn.mu.Unlock()
	return nil
}

// reReplicate copies one under-replicated block from a surviving
// replica to a new target chosen by the placement policy.
func (c *Cluster) reReplicate(b *blockMeta) bool {
	// Read from any live holder; the stored checksum travels with the
	// bytes so the target node stores rather than re-hashes. The
	// source is pinned, not lent — putBlock copies, so the buffer
	// stays recyclable.
	var data []byte
	var sum uint32
	c.mu.RLock()
	holders := append([]string(nil), b.replicas...)
	c.mu.RUnlock()
	for _, id := range holders {
		dn, ok := c.Node(id)
		if !ok {
			continue
		}
		if d, s, rep, err := dn.getBlockPinned(b.id); err == nil {
			data, sum = d, s
			defer dn.unpinBlock(rep)
			break
		}
	}
	if data == nil {
		return false // block lost entirely; nothing to copy
	}

	c.mu.Lock()
	taken := make(map[string]bool, len(b.replicas))
	for _, r := range b.replicas {
		taken[r] = true
	}
	var target *DataNode
	var cands []*DataNode
	for _, id := range c.order {
		dn := c.nodes[id]
		if taken[id] || !dn.hasSpace(b.size) {
			continue
		}
		cands = append(cands, dn)
	}
	if len(cands) > 0 {
		target = cands[c.rng.Intn(len(cands))]
	}
	c.mu.Unlock()

	if target == nil {
		return false
	}
	if err := target.putBlock(b.id, data, sum); err != nil {
		return false
	}
	c.mu.Lock()
	b.replicas = append(b.replicas, target.ID)
	c.mu.Unlock()
	c.reReplicated.Add(1)
	return true
}

// UnderReplicated returns the number of blocks below the replication
// factor (counting only live replicas).
func (c *Cluster) UnderReplicated() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := 0
	for _, f := range c.files {
		for _, b := range f.blocks {
			live := 0
			for _, id := range b.replicas {
				if dn, ok := c.nodes[id]; ok && dn.isAlive() {
					live++
				}
			}
			if live < c.cfg.Replication {
				n++
			}
		}
	}
	return n
}

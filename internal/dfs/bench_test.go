package dfs

import (
	"fmt"
	"testing"

	"repro/internal/units"
)

func benchCluster(b *testing.B, nodes int) *Cluster {
	b.Helper()
	c := NewCluster(Config{BlockSize: 256 * units.KiB, Replication: 3, Seed: 1})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("r%d", i%3), 16*units.GiB); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkWriteReplicated measures the triple-replicated write path
// (placement + three block copies).
func BenchmarkWriteReplicated(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 1*units.MiB)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteFile(fmt.Sprintf("/bench/%06d", i), "dn00", data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadLocal measures reads served from a writer-local
// replica — the fast path MapReduce locality scheduling buys.
func BenchmarkReadLocal(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 4*units.MiB)
	if err := c.WriteFile("/bench/file", "dn00", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadFile("/bench/file", "dn00"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockLocations measures the namenode metadata path the
// MapReduce scheduler hammers while building splits.
func BenchmarkBlockLocations(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 8*units.MiB) // 32 blocks
	if err := c.WriteFile("/bench/file", "", data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BlockLocations("/bench/file"); err != nil {
			b.Fatal(err)
		}
	}
}

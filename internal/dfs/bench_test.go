package dfs

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/units"
)

func benchCluster(b *testing.B, nodes int) *Cluster {
	b.Helper()
	c := NewCluster(Config{BlockSize: 256 * units.KiB, Replication: 3, Seed: 1})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("r%d", i%3), 16*units.GiB); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

// BenchmarkWriteReplicated measures the triple-replicated write path
// (placement + three block copies).
func BenchmarkWriteReplicated(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 1*units.MiB)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.WriteFile(fmt.Sprintf("/bench/%06d", i), "dn00", data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadLocal measures reads served from a writer-local
// replica — the fast path MapReduce locality scheduling buys.
func BenchmarkReadLocal(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 4*units.MiB)
	if err := c.WriteFile("/bench/file", "dn00", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ReadFile("/bench/file", "dn00"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReadParallel measures 8 concurrent readers streaming one
// multi-block file — the MapReduce fan-in pattern. Pre-PR2 this
// serialized on the datanode mutex (every getBlock re-hashed
// the whole block under it) and on the namenode metrics lock.
func BenchmarkReadParallel(b *testing.B) {
	const readers = 8
	c := benchCluster(b, 9)
	data := make([]byte, 16*units.MiB) // 64 blocks
	if err := c.WriteFile("/bench/file", "dn00", data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)) * readers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				if _, err := c.ReadFile("/bench/file", fmt.Sprintf("dn%02d", r)); err != nil {
					b.Error(err)
				}
			}(r)
		}
		wg.Wait()
	}
}

// BenchmarkWriteParallel measures 8 concurrent writers, each
// committing a multi-block file with 3-way replication — sustained
// ingest as the paper's DAQ pipelines produce it.
func BenchmarkWriteParallel(b *testing.B) {
	const writers = 8
	c := benchCluster(b, 9)
	data := make([]byte, 4*units.MiB) // 16 blocks
	b.SetBytes(int64(len(data)) * writers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				name := fmt.Sprintf("/bench/p/%06d-%d", i, w)
				if err := c.WriteFile(name, fmt.Sprintf("dn%02d", w), data); err != nil {
					b.Error(err)
				}
			}(w)
		}
		wg.Wait()
		// Delete outside the timer so the cluster (and process memory)
		// doesn't grow with b.N; the pool recycles the replica buffers.
		b.StopTimer()
		for w := 0; w < writers; w++ {
			if err := c.Delete(fmt.Sprintf("/bench/p/%06d-%d", i, w)); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
	}
}

// BenchmarkReadAtBackward measures a reader alternating between two
// file regions — the record-reader-straddling-splits pattern that a
// single-block cursor cache refetches on every swing.
func BenchmarkReadAtBackward(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 16*units.MiB)
	if err := c.WriteFile("/bench/file", "dn00", data); err != nil {
		b.Fatal(err)
	}
	r, err := c.Open("/bench/file", "dn00")
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 4096)
	b.SetBytes(int64(len(buf)) * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		if _, err := r.ReadAt(buf, 8*int64(units.MiB)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockLocations measures the namenode metadata path the
// MapReduce scheduler hammers while building splits.
func BenchmarkBlockLocations(b *testing.B) {
	c := benchCluster(b, 9)
	data := make([]byte, 8*units.MiB) // 32 blocks
	if err := c.WriteFile("/bench/file", "", data); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BlockLocations("/bench/file"); err != nil {
			b.Fatal(err)
		}
	}
}

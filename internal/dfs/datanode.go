package dfs

import (
	"fmt"
	"hash/crc32"
	"sync"

	"repro/internal/units"
)

// DataNode stores block replicas in memory. Its exported fields are
// immutable after AddDataNode; mutable state is guarded by mu.
type DataNode struct {
	ID       string
	Rack     string
	Capacity units.Bytes

	mu       sync.Mutex
	blocks   map[BlockID][]byte
	sums     map[BlockID]uint32 // CRC-32C per replica, verified on read
	usedByte units.Bytes
	alive    bool
}

func (dn *DataNode) isAlive() bool {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return dn.alive
}

func (dn *DataNode) used() units.Bytes {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return dn.usedByte
}

// Used returns the bytes stored on the node.
func (dn *DataNode) Used() units.Bytes { return dn.used() }

// Alive reports whether the node is serving.
func (dn *DataNode) Alive() bool { return dn.isAlive() }

// BlockCount returns the number of replicas held.
func (dn *DataNode) BlockCount() int {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return len(dn.blocks)
}

// hasSpace reports whether the node can accept sz more bytes.
func (dn *DataNode) hasSpace(sz units.Bytes) bool {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return dn.alive && dn.usedByte+sz <= dn.Capacity
}

// putBlock stores a replica. The data slice is copied: callers reuse
// their buffers.
func (dn *DataNode) putBlock(id BlockID, data []byte) error {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive {
		return fmt.Errorf("%w: %s", ErrDeadNode, dn.ID)
	}
	sz := units.Bytes(len(data))
	if dn.usedByte+sz > dn.Capacity {
		return fmt.Errorf("dfs: datanode %s out of space", dn.ID)
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	dn.blocks[id] = cp
	dn.sums[id] = crc32.Checksum(cp, crcTable)
	dn.usedByte += sz
	return nil
}

// getBlock returns the stored replica bytes (not a copy; callers must
// not mutate), verifying the replica's checksum first — a corrupt
// replica reads as an error so callers fall over to another copy.
func (dn *DataNode) getBlock(id BlockID) ([]byte, error) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive {
		return nil, fmt.Errorf("%w: %s", ErrDeadNode, dn.ID)
	}
	data, ok := dn.blocks[id]
	if !ok {
		return nil, fmt.Errorf("dfs: node %s missing block %s", dn.ID, id)
	}
	if want, ok := dn.sums[id]; ok {
		if got := crc32.Checksum(data, crcTable); got != want {
			return nil, fmt.Errorf("dfs: node %s block %s corrupt on read", dn.ID, id)
		}
	}
	return data, nil
}

// dropBlock removes a replica if present.
func (dn *DataNode) dropBlock(id BlockID) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if data, ok := dn.blocks[id]; ok {
		dn.usedByte -= units.Bytes(len(data))
		delete(dn.blocks, id)
		delete(dn.sums, id)
	}
}

// kill marks the node dead and returns the IDs of blocks it held.
func (dn *DataNode) kill() []BlockID {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.alive = false
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	return out
}

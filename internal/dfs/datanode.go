package dfs

import (
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/units"
)

// replica is one stored block copy plus its integrity state. The
// CRC-32C is computed once by the writer and stored verbatim;
// verified records whether the bytes have been checked against it
// since the last event that could have changed them (initial store,
// corruption injection). gen guards against a lost invalidation while
// a lazy verification is hashing outside the node mutex.
//
// lent and pins make buffer recycling alias-safe: lent is latched
// when the data slice escapes to a caller (the slice then outlives
// the replica — it is never recycled, only GC'd); pins counts
// in-flight lock-free checksum passes, deferring recycling of a
// dropped replica until the last one finishes. All four fields are
// guarded by the node mutex.
type replica struct {
	data     []byte
	sum      uint32
	verified bool
	gen      uint64
	lent     bool
	pins     int
	dropped  bool
}

// DataNode stores block replicas in memory. Its exported fields are
// immutable after AddDataNode; the block map is guarded by mu, while
// liveness and usage are atomics so placement probes and cluster
// reports don't bounce every node's lock.
//
// Lock ordering: mu is a leaf lock — code holding it never acquires
// the cluster lock or another node's mu. Checksum work happens
// outside mu so concurrent readers of one node don't serialize behind
// a 64 MiB hash.
type DataNode struct {
	ID       string
	Rack     string
	Capacity units.Bytes

	pool *bufferPool

	alive    atomic.Bool
	usedByte atomic.Int64

	mu     sync.Mutex
	blocks map[BlockID]*replica
}

func (dn *DataNode) isAlive() bool { return dn.alive.Load() }

func (dn *DataNode) used() units.Bytes { return units.Bytes(dn.usedByte.Load()) }

// Used returns the bytes stored on the node.
func (dn *DataNode) Used() units.Bytes { return dn.used() }

// Alive reports whether the node is serving.
func (dn *DataNode) Alive() bool { return dn.isAlive() }

// BlockCount returns the number of replicas held.
func (dn *DataNode) BlockCount() int {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	return len(dn.blocks)
}

// hasSpace reports whether the node can accept sz more bytes. It is
// advisory — placement probes it lock-free; putBlock re-checks
// authoritatively under mu.
func (dn *DataNode) hasSpace(sz units.Bytes) bool {
	return dn.alive.Load() && units.Bytes(dn.usedByte.Load())+sz <= dn.Capacity
}

// putBlock stores a replica. The data slice is copied into a pooled
// buffer (callers keep ownership of data); sum is the writer-computed
// CRC-32C of data, stored verbatim so the node never re-hashes the
// block it was just handed. The copy happens before the mutex is
// taken so concurrent replica streams to one node overlap.
func (dn *DataNode) putBlock(id BlockID, data []byte, sum uint32) error {
	cp := append(dn.pool.get(len(data)), data...)
	sz := units.Bytes(len(data))
	dn.mu.Lock()
	defer dn.mu.Unlock()
	if !dn.alive.Load() {
		dn.pool.put(cp)
		return fmt.Errorf("%w: %s", ErrDeadNode, dn.ID)
	}
	if old, ok := dn.blocks[id]; ok {
		// Re-put of an existing replica (balancer retry): replace.
		dn.usedByte.Add(-int64(len(old.data)))
		delete(dn.blocks, id)
		dn.retireLocked(old)
	}
	if units.Bytes(dn.usedByte.Load())+sz > dn.Capacity {
		dn.pool.put(cp)
		return fmt.Errorf("dfs: datanode %s out of space", dn.ID)
	}
	dn.blocks[id] = &replica{data: cp, sum: sum}
	dn.usedByte.Add(int64(sz))
	return nil
}

// getBlock returns the stored replica bytes and checksum (not a copy;
// callers must not mutate). The checksum is verified lazily: the
// first read after a store or invalidation hashes the block — outside
// the mutex — and records the result, so steady-state reads are a map
// lookup. A corrupt replica reads as an error so callers fall over to
// another copy. The returned slice may be retained indefinitely (the
// replica is marked lent and its buffer is never recycled).
func (dn *DataNode) getBlock(id BlockID) ([]byte, uint32, error) {
	data, sum, _, err := dn.getBlockMode(id, true)
	return data, sum, err
}

// getBlockPinned is getBlock for internal transfers (balancer,
// re-replication) that only copy the bytes: instead of latching lent
// — which would exile the buffer from the pool — the replica is
// pinned. Callers must call unpinBlock on the returned replica when
// done and must not retain the slice past it.
func (dn *DataNode) getBlockPinned(id BlockID) ([]byte, uint32, *replica, error) {
	return dn.getBlockMode(id, false)
}

func (dn *DataNode) getBlockMode(id BlockID, lend bool) ([]byte, uint32, *replica, error) {
	if !dn.alive.Load() {
		return nil, 0, nil, fmt.Errorf("%w: %s", ErrDeadNode, dn.ID)
	}
	dn.mu.Lock()
	rep, ok := dn.blocks[id]
	if !ok {
		dn.mu.Unlock()
		return nil, 0, nil, fmt.Errorf("dfs: node %s missing block %s", dn.ID, id)
	}
	data, sum := rep.data, rep.sum
	if rep.verified {
		if lend {
			rep.lent = true
		} else {
			rep.pins++
		}
		dn.mu.Unlock()
		return data, sum, rep, nil
	}
	gen := rep.gen
	rep.pins++ // covers the lock-free hash below
	dn.mu.Unlock()

	got := crc32.Checksum(data, crcTable)

	dn.mu.Lock()
	if got != sum {
		rep.pins--
		dn.unpinLocked(rep)
		dn.mu.Unlock()
		return nil, 0, nil, fmt.Errorf("dfs: node %s block %s corrupt on read", dn.ID, id)
	}
	if cur, ok := dn.blocks[id]; ok && cur == rep && rep.gen == gen {
		rep.verified = true
	}
	if lend {
		rep.pins--
		rep.lent = true // escaping slice: buffer belongs to the GC now
	}
	// !lend: the hash pin carries over as the caller's transfer pin.
	dn.mu.Unlock()
	return data, sum, rep, nil
}

// unpinBlock releases a pin taken by getBlockPinned, recycling the
// buffer if the replica was dropped in the meantime.
func (dn *DataNode) unpinBlock(rep *replica) {
	dn.mu.Lock()
	rep.pins--
	dn.unpinLocked(rep)
	dn.mu.Unlock()
}

// unpinLocked finishes a lock-free hash pass that is NOT handing the
// slice to a caller: if the replica was dropped while pinned and no
// alias escaped, its buffer can now be recycled. Callers hold dn.mu
// and have already decremented pins.
func (dn *DataNode) unpinLocked(rep *replica) {
	if rep.dropped && rep.pins == 0 && !rep.lent {
		rep.dropped = false // recycle exactly once
		dn.pool.put(rep.data)
	}
}

// retireLocked removes a replica's buffer from service: recycled now
// if no alias escaped and no hash pass is in flight, deferred to the
// last unpin otherwise, or left to the GC once lent. Callers hold
// dn.mu and have already removed rep from the block map.
func (dn *DataNode) retireLocked(rep *replica) {
	if rep.lent {
		return // slice escaped; the buffer now belongs to the GC
	}
	if rep.pins > 0 {
		rep.dropped = true
		return
	}
	dn.pool.put(rep.data)
}

// invalidate marks a replica unverified so the next read re-checks
// its checksum. The generation bump prevents a concurrent lazy
// verification (hashing the pre-mutation bytes) from re-marking it
// verified.
func (dn *DataNode) invalidate(rep *replica) {
	rep.verified = false
	rep.gen++
}

// dropBlock removes a replica if present, recycling its buffer only
// when provably unaliased (never lent to a reader, no hash pass in
// flight). See DESIGN.md ("DFS data path").
func (dn *DataNode) dropBlock(id BlockID) {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	rep, ok := dn.blocks[id]
	if !ok {
		return
	}
	dn.usedByte.Add(-int64(len(rep.data)))
	delete(dn.blocks, id)
	dn.retireLocked(rep)
}

// kill marks the node dead and returns the IDs of blocks it held.
// Buffers are not recycled: readers that fetched before the
// heartbeat loss may still hold them.
func (dn *DataNode) kill() []BlockID {
	dn.mu.Lock()
	defer dn.mu.Unlock()
	dn.alive.Store(false)
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	return out
}

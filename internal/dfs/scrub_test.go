package dfs

import (
	"bytes"
	"testing"
)

func TestCorruptReplicaFallsOverOnRead(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	data := pattern(4096)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	// Corrupt the writer-local replica of every block; reads hinted at
	// dn00 must fall over to healthy replicas and return clean data.
	for _, id := range c.BlockIDsOn("dn00") {
		if !c.CorruptReplica("dn00", id) {
			t.Fatalf("could not corrupt %s", id)
		}
	}
	got, err := c.ReadFile("/f", "dn00")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned corrupt bytes")
	}
}

func TestScrubRepairsCorruption(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	data := pattern(4096)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	blocks := c.BlockIDsOn("dn00")
	for _, id := range blocks {
		c.CorruptReplica("dn00", id)
	}
	rep := c.Scrub()
	if rep.CorruptDropped != len(blocks) {
		t.Fatalf("dropped = %d, want %d", rep.CorruptDropped, len(blocks))
	}
	if rep.ReReplicated != len(blocks) {
		t.Fatalf("re-replicated = %d, want %d", rep.ReReplicated, len(blocks))
	}
	if rep.Unrecoverable != 0 {
		t.Fatalf("unrecoverable = %d", rep.Unrecoverable)
	}
	// Replication factor restored everywhere.
	if ur := c.UnderReplicated(); ur != 0 {
		t.Fatalf("under-replicated after scrub = %d", ur)
	}
	// A clean pass finds nothing.
	rep2 := c.Scrub()
	if rep2.CorruptDropped != 0 || rep2.ReReplicated != 0 {
		t.Fatalf("second pass = %+v", rep2)
	}
	got, err := c.ReadFile("/f", "")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("data damaged by scrub: %v", err)
	}
}

func TestScrubUnrecoverable(t *testing.T) {
	// Replication 1: corrupting the only replica loses the block.
	c := NewCluster(Config{BlockSize: 1024, Replication: 1, Seed: 5})
	if _, err := c.AddDataNode("solo", "r", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteFile("/f", "solo", pattern(1024)); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.BlockIDsOn("solo") {
		c.CorruptReplica("solo", id)
	}
	rep := c.Scrub()
	if rep.Unrecoverable != 1 {
		t.Fatalf("unrecoverable = %d, want 1", rep.Unrecoverable)
	}
	if _, err := c.ReadFile("/f", ""); err == nil {
		t.Fatal("lost block still readable")
	}
}

func TestScrubAfterNodeDeath(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(2048)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KillNode("dn01"); err != nil {
		t.Fatal(err)
	}
	rep := c.Scrub()
	// KillNode already repaired; scrub confirms health.
	if rep.CorruptDropped != 0 || rep.Unrecoverable != 0 {
		t.Fatalf("scrub after repair = %+v", rep)
	}
}

package dfs

import (
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"

	"repro/internal/units"
)

// Create opens a new file for writing. clientHint names the datanode
// the writer runs on (first replicas land there, as in HDFS); it may
// be empty for off-cluster writers. The writer is not safe for
// concurrent use; the cluster is.
func (c *Cluster) Create(name, clientHint string) (*FileWriter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	c.nextID++
	f := &fileEntry{name: name, id: c.nextID, modTime: c.clock()}
	c.files[name] = f
	return &FileWriter{
		c:    c,
		f:    f,
		hint: clientHint,
		buf:  c.pool.get(0),
	}, nil
}

// FileWriter streams data into block-sized chunks and commits each
// block to its replica set. Its block buffer comes from the cluster
// buffer pool and goes back on Close.
type FileWriter struct {
	c      *Cluster
	f      *fileEntry
	hint   string
	buf    []byte
	closed bool
	err    error
}

var _ io.WriteCloser = (*FileWriter)(nil)

// Write buffers p, flushing a block every time BlockSize accumulates.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write to closed writer for %q", w.f.name)
	}
	if w.err != nil {
		return 0, w.err
	}
	total := 0
	bs := int(w.c.cfg.BlockSize)
	for len(p) > 0 {
		room := bs - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == bs {
			if err := w.flushBlock(); err != nil {
				w.err = err
				return total, err
			}
		}
	}
	return total, nil
}

// flushBlock commits the buffered bytes as one block: the CRC-32C is
// computed once here on the writer side, then the block fans out to
// every replica concurrently (the HDFS write pipeline), bounded
// cluster-wide by repSem.
func (w *FileWriter) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	sz := units.Bytes(len(w.buf))
	sum := crc32.Checksum(w.buf, crcTable)

	w.c.mu.Lock()
	id := BlockID{File: w.f.id, Index: len(w.f.blocks)}
	replicas := w.c.choosePlacement(w.hint, sz)
	w.c.mu.Unlock()

	if len(replicas) == 0 {
		return fmt.Errorf("%w: block %s (%s)", ErrNoSpace, id, sz)
	}
	ok := make([]bool, len(replicas))
	var wg sync.WaitGroup
	for i, nodeID := range replicas {
		dn, found := w.c.Node(nodeID)
		if !found {
			continue
		}
		wg.Add(1)
		go func(i int, dn *DataNode) {
			defer wg.Done()
			w.c.repSem <- struct{}{}
			defer func() { <-w.c.repSem }()
			// Under-replicate rather than fail, like HDFS.
			ok[i] = dn.putBlock(id, w.buf, sum) == nil
		}(i, dn)
	}
	wg.Wait()
	stored := make([]string, 0, len(replicas))
	for i, nodeID := range replicas {
		if ok[i] {
			stored = append(stored, nodeID) // preserves placement order
		}
	}
	if len(stored) == 0 {
		return fmt.Errorf("%w: block %s: all replicas failed", ErrNoSpace, id)
	}

	w.c.mu.Lock()
	w.f.blocks = append(w.f.blocks, &blockMeta{id: id, size: sz, replicas: stored})
	w.f.size += sz
	w.c.mu.Unlock()
	w.c.bytesWrit.Add(int64(sz) * int64(len(stored)))

	w.buf = w.buf[:0]
	return nil
}

// Close flushes the trailing partial block and marks the file
// complete. A file is readable only after Close; a failed flush is
// recorded and returned by every subsequent Close.
func (w *FileWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err == nil {
		w.err = w.flushBlock()
	}
	w.c.pool.put(w.buf)
	w.buf = nil
	if w.err != nil {
		return w.err
	}
	w.c.mu.Lock()
	w.f.complete = true
	w.f.modTime = w.c.clock()
	w.c.mu.Unlock()
	return nil
}

// Open returns a reader over a complete file. clientHint names the
// reading node; replicas local to it are preferred (short-circuit
// reads), which is what makes MapReduce locality worth scheduling for.
func (c *Cluster) Open(name, clientHint string) (*FileReader, error) {
	c.mu.RLock()
	f, ok := c.files[name]
	if !ok {
		c.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if !f.complete {
		c.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrIncomplete, name)
	}
	// Snapshot every block's geometry and resolve its replica nodes
	// while holding the namenode lock once — readers then work from
	// their own copy (blockMeta.replicas keeps mutating under c.mu as
	// scrub/repair/balancer run) and resolve nodes without re-locking.
	refs := make([]blockRef, len(f.blocks))
	offs := make([]int64, len(f.blocks)+1)
	for i, b := range f.blocks {
		refs[i] = blockRef{meta: b, id: b.id, size: b.size, replicas: c.resolveLocked(b)}
		offs[i+1] = offs[i] + int64(b.size)
	}
	size := f.size
	c.mu.RUnlock()
	return &FileReader{c: c, name: name, refs: refs, offs: offs, size: size, hint: clientHint}, nil
}

// blockRef is a reader's private view of one block: geometry plus a
// snapshot of the replica set resolved to node handles. meta points
// into the shared namespace and is touched only under c.mu (the
// refresh path).
type blockRef struct {
	meta     *blockMeta
	id       BlockID
	size     units.Bytes
	replicas []*DataNode
}

// resolveLocked maps a block's current replica IDs to node handles.
// Callers hold c.mu (read or write).
func (c *Cluster) resolveLocked(b *blockMeta) []*DataNode {
	out := make([]*DataNode, 0, len(b.replicas))
	for _, id := range b.replicas {
		if dn, ok := c.nodes[id]; ok {
			out = append(out, dn)
		}
	}
	return out
}

// readerCacheSlots is how many fetched blocks a FileReader retains.
// Two would cover a record reader straddling one split boundary; four
// absorbs backward seeks across a few blocks without refetching.
const readerCacheSlots = 4

// blockCache holds the last few fetched blocks keyed by block index,
// evicting FIFO. Slot indexes are stored +1 so the zero value is
// empty.
type blockCache struct {
	idx  [readerCacheSlots]int
	data [readerCacheSlots][]byte
	next int
}

func (bc *blockCache) get(i int) ([]byte, bool) {
	for s, ix := range bc.idx {
		if ix == i+1 {
			return bc.data[s], true
		}
	}
	return nil, false
}

func (bc *blockCache) put(i int, d []byte) {
	bc.idx[bc.next] = i + 1
	bc.data[bc.next] = d
	bc.next = (bc.next + 1) % readerCacheSlots
}

// FileReader reads a file sequentially; ReadAt-style section reads are
// provided for record readers that start mid-file. It is not safe for
// concurrent use; open one per task.
type FileReader struct {
	c    *Cluster
	name string
	refs []blockRef
	offs []int64 // cumulative block offsets, len(refs)+1 entries
	size units.Bytes
	hint string

	pos   int64
	cache blockCache
}

var _ io.ReadCloser = (*FileReader)(nil)
var _ io.ReaderAt = (*FileReader)(nil)
var _ io.WriterTo = (*FileReader)(nil)

// Size returns the file length.
func (r *FileReader) Size() units.Bytes { return r.size }

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	if r.pos >= int64(r.size) {
		return 0, io.EOF
	}
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Seek implements io.Seeker for whence = io.SeekStart/Current/End.
func (r *FileReader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = int64(r.size) + offset
	default:
		return 0, fmt.Errorf("dfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs: negative seek %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// ReadAt implements io.ReaderAt across block boundaries.
func (r *FileReader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("dfs: negative read offset %d", off)
	}
	if off >= int64(r.size) {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < int64(r.size) {
		data, base, err := r.blockFor(off)
		if err != nil {
			return total, err
		}
		n := copy(p[total:], data[off-base:])
		total += n
		off += int64(n)
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// WriteTo implements io.WriterTo, streaming the bytes from the
// current position block by block with no intermediate copy loop.
// io.Copy picks this up, so checksum audits and cross-mount copies in
// the access layer run at block granularity.
func (r *FileReader) WriteTo(w io.Writer) (int64, error) {
	var total int64
	for r.pos < int64(r.size) {
		data, base, err := r.blockFor(r.pos)
		if err != nil {
			return total, err
		}
		chunk := data[r.pos-base:]
		n, err := w.Write(chunk)
		total += int64(n)
		r.pos += int64(n)
		if err == nil && n < len(chunk) {
			err = io.ErrShortWrite
		}
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// blockFor returns the data and base file offset of the block
// containing off, consulting the reader's block cache first. The
// block index is found by binary search over the cumulative offsets —
// O(log blocks), where the pre-index reader walked the block list.
func (r *FileReader) blockFor(off int64) ([]byte, int64, error) {
	i := sort.Search(len(r.refs), func(i int) bool { return r.offs[i+1] > off })
	if i >= len(r.refs) {
		return nil, 0, io.EOF
	}
	if data, ok := r.cache.get(i); ok {
		return data, r.offs[i], nil
	}
	data, err := r.fetch(&r.refs[i])
	if err != nil {
		return nil, 0, err
	}
	r.cache.put(i, data)
	return data, r.offs[i], nil
}

// fetch reads one block from the best replica: the hint node when it
// holds one (a local read), otherwise the first live replica, using
// the node handles snapshotted at Open — metrics are atomics, so the
// steady-state read path takes no namenode lock. If every snapshot
// replica fails (nodes died, the balancer or scrubber moved the block
// since Open), the replica set is refreshed from the namenode — the
// one lock touch — and tried once more, the way an HDFS client
// re-fetches block locations.
func (r *FileReader) fetch(ref *blockRef) ([]byte, error) {
	data, err := r.tryReplicas(ref)
	if err == nil {
		return data, nil
	}
	r.c.mu.RLock()
	ref.replicas = r.c.resolveLocked(ref.meta)
	r.c.mu.RUnlock()
	if data, err2 := r.tryReplicas(ref); err2 == nil {
		return data, nil
	}
	return nil, err
}

// tryReplicas attempts the snapshot replica set, hint-local first.
func (r *FileReader) tryReplicas(ref *blockRef) ([]byte, error) {
	var lastErr error
	try := func(dn *DataNode) ([]byte, bool) {
		data, _, err := dn.getBlock(ref.id)
		if err != nil {
			lastErr = err
			return nil, false
		}
		if dn.ID == r.hint {
			r.c.localReads.Add(1)
		} else {
			r.c.remoteReads.Add(1)
		}
		r.c.bytesRead.Add(int64(ref.size))
		return data, true
	}
	// Local replica first.
	for _, dn := range ref.replicas {
		if dn.ID == r.hint {
			if data, ok := try(dn); ok {
				return data, nil
			}
		}
	}
	for _, dn := range ref.replicas {
		if dn.ID != r.hint {
			if data, ok := try(dn); ok {
				return data, nil
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dfs: block %s has no replicas", ref.id)
	}
	return nil, lastErr
}

// Close releases the reader (no-op; present for io.ReadCloser).
func (r *FileReader) Close() error { return nil }

// WriteFile is a convenience that writes data as one file.
func (c *Cluster) WriteFile(name, clientHint string, data []byte) error {
	w, err := c.Create(name, clientHint)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close() // release the pooled buffer; the write error wins
		return err
	}
	return w.Close()
}

// ReadFile is a convenience that returns a file's full contents. The
// result buffer is sized exactly from the namespace entry, avoiding
// io.ReadAll's grow-and-copy loop.
func (c *Cluster) ReadFile(name, clientHint string) ([]byte, error) {
	r, err := c.Open(name, clientHint)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, int(r.Size()))
	if len(buf) == 0 {
		return buf, nil
	}
	n, err := r.ReadAt(buf, 0)
	if err == io.EOF && n == len(buf) {
		err = nil
	}
	return buf[:n], err
}

package dfs

import (
	"fmt"
	"io"

	"repro/internal/units"
)

// Create opens a new file for writing. clientHint names the datanode
// the writer runs on (first replicas land there, as in HDFS); it may
// be empty for off-cluster writers. The writer is not safe for
// concurrent use; the cluster is.
func (c *Cluster) Create(name, clientHint string) (*FileWriter, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.files[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	c.nextID++
	f := &fileEntry{name: name, id: c.nextID}
	c.files[name] = f
	return &FileWriter{
		c:    c,
		f:    f,
		hint: clientHint,
		buf:  make([]byte, 0, int(c.cfg.BlockSize)),
	}, nil
}

// FileWriter streams data into block-sized chunks and commits each
// block to its replica set.
type FileWriter struct {
	c      *Cluster
	f      *fileEntry
	hint   string
	buf    []byte
	closed bool
	err    error
}

var _ io.WriteCloser = (*FileWriter)(nil)

// Write buffers p, flushing a block every time BlockSize accumulates.
func (w *FileWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("dfs: write to closed writer for %q", w.f.name)
	}
	if w.err != nil {
		return 0, w.err
	}
	total := 0
	bs := int(w.c.cfg.BlockSize)
	for len(p) > 0 {
		room := bs - len(w.buf)
		n := len(p)
		if n > room {
			n = room
		}
		w.buf = append(w.buf, p[:n]...)
		p = p[n:]
		total += n
		if len(w.buf) == bs {
			if err := w.flushBlock(); err != nil {
				w.err = err
				return total, err
			}
		}
	}
	return total, nil
}

// flushBlock commits the buffered bytes as one block.
func (w *FileWriter) flushBlock() error {
	if len(w.buf) == 0 {
		return nil
	}
	sz := units.Bytes(len(w.buf))

	w.c.mu.Lock()
	id := BlockID{File: w.f.id, Index: len(w.f.blocks)}
	replicas := w.c.choosePlacement(w.hint, sz)
	w.c.mu.Unlock()

	if len(replicas) == 0 {
		return fmt.Errorf("%w: block %s (%s)", ErrNoSpace, id, sz)
	}
	stored := replicas[:0:0]
	for _, nodeID := range replicas {
		dn, ok := w.c.Node(nodeID)
		if !ok {
			continue
		}
		if err := dn.putBlock(id, w.buf); err != nil {
			continue // under-replicate rather than fail, like HDFS
		}
		stored = append(stored, nodeID)
	}
	if len(stored) == 0 {
		return fmt.Errorf("%w: block %s: all replicas failed", ErrNoSpace, id)
	}

	w.c.mu.Lock()
	w.f.blocks = append(w.f.blocks, &blockMeta{id: id, size: sz, replicas: stored})
	w.f.size += sz
	w.c.bytesWrit += sz * units.Bytes(len(stored))
	w.c.mu.Unlock()

	w.buf = w.buf[:0]
	return nil
}

// Close flushes the trailing partial block and marks the file
// complete. A file is readable only after Close.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	w.c.mu.Lock()
	w.f.complete = true
	w.c.mu.Unlock()
	return nil
}

// Open returns a reader over a complete file. clientHint names the
// reading node; replicas local to it are preferred (short-circuit
// reads), which is what makes MapReduce locality worth scheduling for.
func (c *Cluster) Open(name, clientHint string) (*FileReader, error) {
	c.mu.RLock()
	f, ok := c.files[name]
	if !ok {
		c.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if !f.complete {
		c.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrIncomplete, name)
	}
	blocks := make([]*blockMeta, len(f.blocks))
	copy(blocks, f.blocks)
	size := f.size
	c.mu.RUnlock()
	return &FileReader{c: c, name: name, blocks: blocks, size: size, hint: clientHint}, nil
}

// FileReader reads a file sequentially; ReadAt-style section reads are
// provided for record readers that start mid-file. It is not safe for
// concurrent use; open one per task.
type FileReader struct {
	c      *Cluster
	name   string
	blocks []*blockMeta
	size   units.Bytes
	hint   string

	pos    int64
	curIdx int
	cur    []byte // current block data
	curOff int64  // file offset of cur[0]
}

var _ io.ReadCloser = (*FileReader)(nil)
var _ io.ReaderAt = (*FileReader)(nil)

// Size returns the file length.
func (r *FileReader) Size() units.Bytes { return r.size }

// Read implements io.Reader.
func (r *FileReader) Read(p []byte) (int, error) {
	if r.pos >= int64(r.size) {
		return 0, io.EOF
	}
	n, err := r.ReadAt(p, r.pos)
	r.pos += int64(n)
	if err == io.EOF && n > 0 {
		err = nil
	}
	return n, err
}

// Seek implements io.Seeker for whence = io.SeekStart/Current/End.
func (r *FileReader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = r.pos + offset
	case io.SeekEnd:
		abs = int64(r.size) + offset
	default:
		return 0, fmt.Errorf("dfs: bad whence %d", whence)
	}
	if abs < 0 {
		return 0, fmt.Errorf("dfs: negative seek %d", abs)
	}
	r.pos = abs
	return abs, nil
}

// ReadAt implements io.ReaderAt across block boundaries.
func (r *FileReader) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(r.size) {
		return 0, io.EOF
	}
	total := 0
	for total < len(p) && off < int64(r.size) {
		data, base, err := r.blockFor(off)
		if err != nil {
			return total, err
		}
		n := copy(p[total:], data[off-base:])
		total += n
		off += int64(n)
	}
	if total < len(p) {
		return total, io.EOF
	}
	return total, nil
}

// blockFor loads (and caches) the block containing file offset off,
// returning its data and base offset.
func (r *FileReader) blockFor(off int64) ([]byte, int64, error) {
	if r.cur != nil && off >= r.curOff && off < r.curOff+int64(len(r.cur)) {
		return r.cur, r.curOff, nil
	}
	base := int64(0)
	for i, b := range r.blocks {
		if off < base+int64(b.size) {
			data, err := r.fetch(b)
			if err != nil {
				return nil, 0, err
			}
			r.cur, r.curOff, r.curIdx = data, base, i
			return data, base, nil
		}
		base += int64(b.size)
	}
	return nil, 0, io.EOF
}

// fetch reads one block from the best replica: the hint node when it
// holds one (a local read), otherwise the first live replica.
func (r *FileReader) fetch(b *blockMeta) ([]byte, error) {
	var lastErr error
	// Local replica first.
	ordered := make([]string, 0, len(b.replicas))
	for _, id := range b.replicas {
		if id == r.hint {
			ordered = append(ordered, id)
		}
	}
	for _, id := range b.replicas {
		if id != r.hint {
			ordered = append(ordered, id)
		}
	}
	for _, id := range ordered {
		dn, ok := r.c.Node(id)
		if !ok {
			continue
		}
		data, err := dn.getBlock(b.id)
		if err != nil {
			lastErr = err
			continue
		}
		r.c.mu.Lock()
		if id == r.hint {
			r.c.localReads++
		} else {
			r.c.remoteReads++
		}
		r.c.bytesRead += b.size
		r.c.mu.Unlock()
		return data, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dfs: block %s has no replicas", b.id)
	}
	return nil, lastErr
}

// Close releases the reader (no-op; present for io.ReadCloser).
func (r *FileReader) Close() error { return nil }

// WriteFile is a convenience that writes data as one file.
func (c *Cluster) WriteFile(name, clientHint string, data []byte) error {
	w, err := c.Create(name, clientHint)
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		return err
	}
	return w.Close()
}

// ReadFile is a convenience that returns a file's full contents.
func (c *Cluster) ReadFile(name, clientHint string) ([]byte, error) {
	r, err := c.Open(name, clientHint)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}

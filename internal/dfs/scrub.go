package dfs

import (
	"fmt"
	"hash/crc32"
)

// HDFS stores a checksum beside every block replica and verifies it
// on read; a background scrubber walks replicas, drops corrupt ones
// and restores replication from the survivors. This file implements
// that behaviour on top of the write-once checksum lifecycle: the
// writer computes one CRC-32C per block, datanodes store it verbatim,
// the first read after a store or invalidation verifies lazily
// (DataNode.getBlock), and Cluster.Scrub runs the full periodic
// verification and repair pass.

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// verifyBlock checks a replica's stored checksum, returning an error
// for corrupt data. Callers hold no locks; the hash runs outside the
// node mutex and a passing check marks the replica verified so
// subsequent reads skip it.
func (dn *DataNode) verifyBlock(id BlockID) error {
	dn.mu.Lock()
	rep, ok := dn.blocks[id]
	if !ok {
		dn.mu.Unlock()
		return fmt.Errorf("dfs: node %s missing block %s", dn.ID, id)
	}
	data, want, gen := rep.data, rep.sum, rep.gen
	rep.pins++
	dn.mu.Unlock()

	got := crc32.Checksum(data, crcTable)

	dn.mu.Lock()
	rep.pins--
	dn.unpinLocked(rep)
	if got != want {
		dn.mu.Unlock()
		return fmt.Errorf("dfs: node %s block %s corrupt (crc %08x != %08x)", dn.ID, id, got, want)
	}
	if cur, ok := dn.blocks[id]; ok && cur == rep && rep.gen == gen {
		rep.verified = true
	}
	dn.mu.Unlock()
	return nil
}

// CorruptReplica flips one byte of a replica in place — failure
// injection for scrubber tests and experiments; the stored checksum
// goes stale and the replica is marked unverified so the next read
// re-checks and detects the damage. It reports whether the named node
// held the block. Injection models offline bit-rot: do not run it
// concurrently with readers of the same block.
func (c *Cluster) CorruptReplica(nodeID string, id BlockID) bool {
	dn, ok := c.Node(nodeID)
	if !ok {
		return false
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	rep, ok := dn.blocks[id]
	if !ok || len(rep.data) == 0 {
		return false
	}
	rep.data[len(rep.data)/2] ^= 0xFF
	dn.invalidate(rep)
	return true
}

// BlockIDsOn lists the blocks a node holds (diagnostics and tests).
func (c *Cluster) BlockIDsOn(nodeID string) []BlockID {
	dn, ok := c.Node(nodeID)
	if !ok {
		return nil
	}
	dn.mu.Lock()
	defer dn.mu.Unlock()
	out := make([]BlockID, 0, len(dn.blocks))
	for id := range dn.blocks {
		out = append(out, id)
	}
	return out
}

// ScrubReport summarizes one scrubber pass.
type ScrubReport struct {
	BlocksChecked   int
	ReplicasChecked int
	CorruptDropped  int
	ReReplicated    int
	Unrecoverable   int // blocks with no valid replica left
}

// Scrub verifies every replica of every block, drops corrupt
// replicas, and restores the replication factor from healthy copies.
// It is the administrative integrity pass HDFS runs continuously; the
// rule engine's checksum audits (E12) cover end-to-end integrity at
// the object level above it.
func (c *Cluster) Scrub() ScrubReport {
	var rep ScrubReport

	// Snapshot block metas under the namenode lock, then verify
	// without holding it (verification takes per-node locks).
	c.mu.RLock()
	var metas []*blockMeta
	for _, f := range c.files {
		metas = append(metas, f.blocks...)
	}
	c.mu.RUnlock()

	for _, b := range metas {
		rep.BlocksChecked++
		c.mu.RLock()
		holders := append([]string(nil), b.replicas...)
		c.mu.RUnlock()

		var keep []string
		for _, nodeID := range holders {
			dn, ok := c.Node(nodeID)
			if !ok || !dn.isAlive() {
				continue
			}
			rep.ReplicasChecked++
			if err := dn.verifyBlock(b.id); err != nil {
				dn.dropBlock(b.id)
				rep.CorruptDropped++
				continue
			}
			keep = append(keep, nodeID)
		}

		c.mu.Lock()
		b.replicas = keep
		under := len(keep) < c.cfg.Replication
		c.mu.Unlock()

		if len(keep) == 0 {
			rep.Unrecoverable++
			continue
		}
		if under && c.reReplicate(b) {
			rep.ReReplicated++
		}
	}
	return rep
}

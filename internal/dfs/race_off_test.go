//go:build !race

package dfs

const raceEnabled = false

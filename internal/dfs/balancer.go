package dfs

import "sort"

// Balance moves block replicas from over-full to under-full datanodes
// until every node's utilization is within threshold of the cluster
// mean (the HDFS balancer contract). It returns the number of moves.
// Moves never co-locate two replicas of a block on one node.
func (c *Cluster) Balance(threshold float64) int {
	moves := 0
	for i := 0; i < 10_000; i++ { // hard bound against livelock
		if !c.balanceStep(threshold) {
			break
		}
		moves++
	}
	return moves
}

// balanceStep performs one replica move; it reports whether a move
// happened.
func (c *Cluster) balanceStep(threshold float64) bool {
	c.mu.Lock()

	type nodeUtil struct {
		dn   *DataNode
		util float64
	}
	var utils []nodeUtil
	var totalUsed, totalCap float64
	for _, id := range c.order {
		dn := c.nodes[id]
		if !dn.isAlive() || dn.Capacity == 0 {
			continue
		}
		u := float64(dn.used()) / float64(dn.Capacity)
		utils = append(utils, nodeUtil{dn, u})
		totalUsed += float64(dn.used())
		totalCap += float64(dn.Capacity)
	}
	if totalCap == 0 || len(utils) < 2 {
		c.mu.Unlock()
		return false
	}
	mean := totalUsed / totalCap
	sort.Slice(utils, func(i, j int) bool { return utils[i].util > utils[j].util })
	src := utils[0]
	dst := utils[len(utils)-1]
	if src.util <= mean+threshold || dst.util >= mean-threshold {
		c.mu.Unlock()
		return false
	}

	// Find a block on src whose replica set excludes dst and fits.
	var meta *blockMeta
	for _, f := range c.files {
		for _, b := range f.blocks {
			onSrc, onDst := false, false
			for _, r := range b.replicas {
				if r == src.dn.ID {
					onSrc = true
				}
				if r == dst.dn.ID {
					onDst = true
				}
			}
			if onSrc && !onDst && dst.dn.hasSpace(b.size) {
				meta = b
				break
			}
		}
		if meta != nil {
			break
		}
	}
	c.mu.Unlock()
	if meta == nil {
		return false
	}

	data, sum, rep, err := src.dn.getBlockPinned(meta.id)
	if err != nil {
		return false
	}
	err = dst.dn.putBlock(meta.id, data, sum)
	src.dn.unpinBlock(rep) // putBlock copied; drop our alias before the drop
	if err != nil {
		return false
	}
	src.dn.dropBlock(meta.id)

	c.mu.Lock()
	for i, r := range meta.replicas {
		if r == src.dn.ID {
			meta.replicas[i] = dst.dn.ID
		}
	}
	c.mu.Unlock()
	return true
}

package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"repro/internal/units"
)

// A flush that fails at Close must be reported by that Close AND by
// every later Close — the old writer marked itself closed first and
// swallowed the error on the second call.
func TestCloseReportsFlushErrorRepeatedly(t *testing.T) {
	c := NewCluster(Config{BlockSize: 1024, Replication: 1, Seed: 1})
	if _, err := c.AddDataNode("tiny", "r", 512); err != nil {
		t.Fatal(err)
	}
	w, err := c.Create("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	// 800 bytes: buffered (under one block), flushed only at Close,
	// where placement fails — the node holds 512.
	if _, err := w.Write(pattern(800)); err != nil {
		t.Fatal(err)
	}
	first := w.Close()
	if !errors.Is(first, ErrNoSpace) {
		t.Fatalf("first Close = %v, want ErrNoSpace", first)
	}
	if again := w.Close(); !errors.Is(again, ErrNoSpace) {
		t.Fatalf("second Close = %v, want the recorded flush error", again)
	}
	// The file never became readable.
	if _, err := c.Open("/f", ""); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("Open after failed Close = %v, want ErrIncomplete", err)
	}
}

// A clean double Close stays nil.
func TestDoubleCloseClean(t *testing.T) {
	c := newTestCluster(t, 3, 1, 1024)
	w, err := c.Create("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(100)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
}

// Checksum lifecycle: replicas are verified lazily on first read and
// the result sticks; corruption injection invalidates, so the next
// read re-verifies and detects it.
func TestChecksumVerifiedOnceThenInvalidated(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(1024)); err != nil {
		t.Fatal(err)
	}
	dn, _ := c.Node("dn00")
	ids := c.BlockIDsOn("dn00")
	if len(ids) != 1 {
		t.Fatalf("blocks on dn00 = %d, want 1", len(ids))
	}
	id := ids[0]
	rep := func() *replica {
		dn.mu.Lock()
		defer dn.mu.Unlock()
		return dn.blocks[id]
	}()
	if rep.verified {
		t.Fatal("replica verified before any read")
	}
	if _, err := c.ReadFile("/f", "dn00"); err != nil {
		t.Fatal(err)
	}
	if !rep.verified {
		t.Fatal("replica not marked verified after first read")
	}
	if !c.CorruptReplica("dn00", id) {
		t.Fatal("could not corrupt replica")
	}
	if rep.verified {
		t.Fatal("corruption did not invalidate the replica")
	}
	// The corrupt replica reads as an error; the reader falls over.
	if _, _, err := dn.getBlock(id); err == nil {
		t.Fatal("corrupt replica read back without error")
	}
}

// Degraded read: with one replica corrupted, reads hinted at the bad
// node fall over to a healthy copy, and a later scrub drops the bad
// replica and restores replication.
func TestDegradedReadThenScrubRepairs(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	data := pattern(3072)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	// Read once so every dn00 replica is verified — the corruption
	// must still be caught via invalidation, not first-read luck.
	if got, err := c.ReadFile("/f", "dn00"); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("clean read failed: %v", err)
	}
	ids := c.BlockIDsOn("dn00")
	if len(ids) == 0 {
		t.Fatal("no blocks on dn00")
	}
	bad := ids[0]
	if !c.CorruptReplica("dn00", bad) {
		t.Fatal("could not corrupt replica")
	}
	got, err := c.ReadFile("/f", "dn00")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read returned corrupt bytes")
	}
	rep := c.Scrub()
	if rep.CorruptDropped != 1 {
		t.Fatalf("scrub dropped %d replicas, want 1", rep.CorruptDropped)
	}
	if rep.ReReplicated != 1 {
		t.Fatalf("scrub re-replicated %d blocks, want 1", rep.ReReplicated)
	}
	if ur := c.UnderReplicated(); ur != 0 {
		t.Fatalf("under-replicated after scrub = %d", ur)
	}
}

// ReadAt via the block index: backward and random section reads across
// many blocks return exact bytes (the old reader kept only a single
// cursor block; the index + cache must not change semantics).
func TestReadAtBackwardSeeks(t *testing.T) {
	c := newTestCluster(t, 6, 2, 128)
	data := pattern(4096) // 32 blocks
	if err := c.WriteFile("/f", "", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	offsets := []int64{4000, 0, 2048, 100, 3900, 500, 0}
	buf := make([]byte, 96)
	for _, off := range offsets {
		n, err := r.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if !bytes.Equal(buf[:n], data[off:off+int64(n)]) {
			t.Fatalf("ReadAt(%d) returned wrong bytes", off)
		}
	}
}

// WriteTo streams the remaining bytes and advances the position.
func TestWriteTo(t *testing.T) {
	c := newTestCluster(t, 4, 2, 256)
	data := pattern(1000)
	if err := c.WriteFile("/f", "", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Seek(300, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, err := r.WriteTo(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != 700 || !bytes.Equal(sink.Bytes(), data[300:]) {
		t.Fatalf("WriteTo copied %d bytes, mismatch=%v", n, !bytes.Equal(sink.Bytes(), data[300:]))
	}
	if _, err := sink.ReadByte(); err != nil {
		t.Fatal(err)
	}
}

// 16 concurrent readers × 4 concurrent writers on one cluster — run
// under -race in CI. Readers hammer pre-written files while writers
// commit new ones through the pooled-buffer, fan-out write path.
func TestConcurrentReadWriteStress(t *testing.T) {
	c := newTestCluster(t, 8, 2, 2048)
	const (
		baseFiles     = 4
		readers       = 16
		writers       = 4
		filesPerWrite = 6
		readRounds    = 8
	)
	base := make([][]byte, baseFiles)
	for i := range base {
		base[i] = pattern(16*1024 + i)
		if err := c.WriteFile(fmt.Sprintf("/stress/base/%d", i), fmt.Sprintf("dn%02d", i%8), base[i]); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, readers+writers+1)
	// Admin churn concurrent with the data path: scrub passes plus a
	// kill/re-replicate/revive cycle. Replication is 3 and only one
	// node is ever down, so every block keeps a live replica; readers
	// holding stale location snapshots must refresh and carry on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			c.Scrub()
			victim := fmt.Sprintf("dn%02d", i%8)
			if _, err := c.KillNode(victim); err != nil {
				errc <- fmt.Errorf("admin kill: %w", err)
				return
			}
			if err := c.ReviveNode(victim); err != nil {
				errc <- fmt.Errorf("admin revive: %w", err)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < filesPerWrite; j++ {
				name := fmt.Sprintf("/stress/w/%d-%d", w, j)
				data := pattern(8*1024 + w*100 + j)
				if err := c.WriteFile(name, fmt.Sprintf("dn%02d", (w+j)%8), data); err != nil {
					errc <- fmt.Errorf("writer %d: %w", w, err)
					return
				}
				got, err := c.ReadFile(name, "")
				if err != nil || !bytes.Equal(got, data) {
					errc <- fmt.Errorf("writer %d read-back %s: %v", w, name, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			hint := fmt.Sprintf("dn%02d", r%8)
			for round := 0; round < readRounds; round++ {
				i := (r + round) % baseFiles
				got, err := c.ReadFile(fmt.Sprintf("/stress/base/%d", i), hint)
				if err != nil {
					errc <- fmt.Errorf("reader %d: %w", r, err)
					return
				}
				if !bytes.Equal(got, base[i]) {
					errc <- fmt.Errorf("reader %d: base file %d mismatch", r, i)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.Files != baseFiles+writers*filesPerWrite {
		t.Fatalf("files = %d, want %d", rep.Files, baseFiles+writers*filesPerWrite)
	}
	if rep.BytesRead == 0 || rep.BytesWritten == 0 {
		t.Fatalf("metrics lost under concurrency: %+v", rep)
	}
}

// A reader that fetched blocks before its file was deleted (and the
// cluster immediately rewrites new data, churning the buffer pool)
// must keep seeing the original bytes: buffers whose slices escaped
// through getBlock are never recycled into the pool.
func TestReaderSurvivesDeleteAndPoolChurn(t *testing.T) {
	c := newTestCluster(t, 4, 2, 512)
	data := pattern(2048)
	if err := c.WriteFile("/victim", "dn00", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("/victim", "dn00")
	if err != nil {
		t.Fatal(err)
	}
	// Populate the reader's block cache.
	head := make([]byte, 1024)
	if _, err := r.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete("/victim"); err != nil {
		t.Fatal(err)
	}
	// Churn the pool: new writes would scribble over any wrongly
	// recycled buffer.
	for i := 0; i < 8; i++ {
		junk := bytes.Repeat([]byte{0xEE}, 2048)
		if err := c.WriteFile(fmt.Sprintf("/churn/%d", i), "", junk); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.ReadAt(head, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, data[:1024]) {
		t.Fatal("cached blocks were recycled out from under an open reader")
	}
}

// Buffers never handed to a reader ARE recycled on delete: the
// write-delete churn path reuses pooled block buffers instead of
// allocating BlockSize per block per replica. Put and Get run on the
// same goroutine, so sync.Pool's per-P slot makes the round-trip
// deterministic here.
func TestUnreadBuffersRecycleOnDelete(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under the race detector")
	}
	c := newTestCluster(t, 4, 2, 512)
	if err := c.WriteFile("/a", "", pattern(512)); err != nil {
		t.Fatal(err)
	}
	var bufs []*byte
	for _, id := range []string{"dn00", "dn01", "dn02", "dn03"} {
		dn, _ := c.Node(id)
		dn.mu.Lock()
		for _, rep := range dn.blocks {
			bufs = append(bufs, &rep.data[0])
		}
		dn.mu.Unlock()
	}
	if len(bufs) == 0 {
		t.Fatal("no replicas stored")
	}
	if err := c.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	// The pool also holds the writer's staging buffer; drain a few
	// entries and accept any retired replica buffer among them.
	for i := 0; i < 8; i++ {
		got := c.pool.get(0)
		base := &got[:1][0]
		for _, b := range bufs {
			if b == base {
				return // one of the retired replica buffers came back
			}
		}
	}
	t.Fatal("pool did not return any buffer retired by Delete")
}

// A reader whose replica snapshot went entirely stale (every original
// holder died and the blocks were re-replicated elsewhere) must
// refresh locations from the namenode and keep reading.
func TestReaderRefreshesStaleReplicas(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	data := pattern(2048)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	// Kill every node that held a replica at Open time; KillNode
	// re-replicates onto the survivors.
	locs, err := c.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	holders := map[string]bool{}
	for _, reps := range locs {
		for _, id := range reps {
			holders[id] = true
		}
	}
	if len(holders) >= 6 {
		t.Fatalf("replicas cover all %d nodes; cannot go fully stale", len(holders))
	}
	for id := range holders {
		if _, err := c.KillNode(id); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]byte, len(data))
	if _, err := r.ReadAt(got, 0); err != nil {
		t.Fatalf("read after full replica turnover: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("refreshed read returned wrong bytes")
	}
}

// The cluster-wide replica-stream semaphore must bound, not deadlock,
// a write storm larger than its capacity.
func TestReplicaStreamBound(t *testing.T) {
	c := NewCluster(Config{BlockSize: 1024, Replication: 3, Seed: 9, MaxReplicaStreams: 2})
	for i := 0; i < 6; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("r%d", i%2), units.MiB); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := c.WriteFile(fmt.Sprintf("/sem/%d", w), "", pattern(4096)); err != nil {
				errc <- err
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	for w := 0; w < 8; w++ {
		if _, err := c.ReadFile(fmt.Sprintf("/sem/%d", w), ""); err != nil {
			t.Fatal(err)
		}
	}
}

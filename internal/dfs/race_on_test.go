//go:build race

package dfs

// raceEnabled reports that this binary was built with the race
// detector, under which sync.Pool randomly drops items — tests
// asserting pool round-trips must skip.
const raceEnabled = true

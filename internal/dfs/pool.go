package dfs

import "sync"

// bufferPool recycles block-sized payload buffers across writers and
// datanodes so sustained ingest stops allocating BlockSize bytes per
// block per replica. Only buffers of exactly the cluster block size
// are pooled; odd sizes (tail blocks on oversized requests) fall back
// to the allocator.
//
// Ownership rules (documented for consumers in DESIGN.md): a buffer
// obtained from get is owned by the caller until handed to put.
// Replica buffers are recycled only when provably unaliased — a
// replica whose slice ever escaped through getBlock is marked lent
// and left to the GC instead (see replica.lent/pins in datanode.go),
// so slices held by readers remain valid indefinitely.
type bufferPool struct {
	size int
	p    sync.Pool
}

func newBufferPool(blockSize int) *bufferPool {
	return &bufferPool{size: blockSize}
}

// get returns a zero-length buffer with capacity at least n.
func (bp *bufferPool) get(n int) []byte {
	if n > bp.size {
		return make([]byte, 0, n)
	}
	if v := bp.p.Get(); v != nil {
		return (*v.(*[]byte))[:0]
	}
	return make([]byte, 0, bp.size)
}

// put recycles a buffer previously returned by get. Buffers whose
// capacity does not match the pooled block size are dropped for the
// GC.
func (bp *bufferPool) put(b []byte) {
	if cap(b) != bp.size {
		return
	}
	b = b[:0]
	bp.p.Put(&b)
}

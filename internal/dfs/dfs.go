// Package dfs is an executable reimplementation of the Hadoop
// Distributed File System as deployed in the LSDF analysis cluster
// (slide 11: "Hadoop environment + 110 TB Hadoop filesystem, extreme
// scalability on commodity hardware").
//
// The design follows HDFS circa 2011: a single namenode holds the
// namespace and block map; datanodes hold replicated fixed-size
// blocks; placement is rack-aware (first replica near the writer, the
// second on a different rack, the third on the second's rack); reads
// prefer the closest replica. Unlike the facility-scale models in
// this repository, dfs moves real bytes and is safe for concurrent
// use — the MapReduce engine runs directly on top of it.
package dfs

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/units"
)

// Errors reported by namespace operations.
var (
	ErrNotFound   = errors.New("dfs: file not found")
	ErrExists     = errors.New("dfs: file exists")
	ErrIncomplete = errors.New("dfs: file is being written")
	ErrNoSpace    = errors.New("dfs: no datanode with free space")
	ErrDeadNode   = errors.New("dfs: datanode is dead")
)

// Config carries cluster-wide parameters.
type Config struct {
	BlockSize   units.Bytes // default 64 MiB, the Hadoop-2011 default
	Replication int         // default 3
	Seed        int64       // placement randomness; fixed for reproducibility

	// MaxReplicaStreams bounds how many block replica transfers run
	// concurrently across the whole cluster (the write-pipeline
	// fan-out). Default 4×GOMAXPROCS.
	MaxReplicaStreams int
}

// DefaultConfig mirrors a 2011 Hadoop deployment.
func DefaultConfig() Config {
	return Config{BlockSize: 64 * units.MiB, Replication: 3, Seed: 1}
}

// BlockID names one block of one file.
type BlockID struct {
	File  uint64
	Index int
}

// String renders the block name in HDFS style.
func (b BlockID) String() string { return fmt.Sprintf("blk_%d_%d", b.File, b.Index) }

// blockMeta is the namenode's record of one block.
type blockMeta struct {
	id       BlockID
	size     units.Bytes
	replicas []string // datanode IDs, placement order
}

// fileEntry is the namenode's record of one file.
type fileEntry struct {
	name     string
	id       uint64
	size     units.Bytes
	blocks   []*blockMeta
	complete bool
	modTime  time.Time // set at Create, bumped when the file completes
}

// FileInfo is the public view of a file.
type FileInfo struct {
	Name     string
	Size     units.Bytes
	Blocks   int
	Complete bool
	ModTime  time.Time
}

// Cluster is the namenode plus its datanodes.
//
// Lock ordering: mu (the namenode lock) may be held while taking a
// datanode's mu (placement probes node space); the reverse never
// happens. The data path — block transfer, checksum verification,
// read/write metrics — takes neither: transfers synchronize on the
// per-node mutexes, metrics are atomics.
type Cluster struct {
	cfg    Config
	pool   *bufferPool
	repSem chan struct{} // cluster-wide bound on concurrent replica streams

	mu     sync.RWMutex
	nodes  map[string]*DataNode
	order  []string // deterministic node iteration order
	files  map[string]*fileEntry
	nextID uint64
	rng    *rand.Rand
	clock  func() time.Time // timestamp source for file mtimes

	// metrics (lock-free; reads never touch mu)
	localReads   atomic.Uint64
	remoteReads  atomic.Uint64
	bytesRead    atomic.Int64
	bytesWrit    atomic.Int64
	reReplicated atomic.Uint64
}

// NewCluster creates an empty cluster.
func NewCluster(cfg Config) *Cluster {
	if cfg.BlockSize <= 0 {
		cfg.BlockSize = 64 * units.MiB
	}
	if cfg.Replication <= 0 {
		cfg.Replication = 3
	}
	if cfg.MaxReplicaStreams <= 0 {
		cfg.MaxReplicaStreams = 4 * runtime.GOMAXPROCS(0)
	}
	return &Cluster{
		cfg:    cfg,
		pool:   newBufferPool(int(cfg.BlockSize)),
		repSem: make(chan struct{}, cfg.MaxReplicaStreams),
		nodes:  make(map[string]*DataNode),
		files:  make(map[string]*fileEntry),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		clock:  time.Now,
	}
}

// SetClock injects a timestamp source for file modification times
// (virtual time in simulations, fixed clocks in tests).
func (c *Cluster) SetClock(clock func() time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
}

// Config returns the cluster configuration.
func (c *Cluster) Config() Config { return c.cfg }

// AddDataNode registers a node on a rack with a capacity budget.
func (c *Cluster) AddDataNode(id, rack string, capacity units.Bytes) (*DataNode, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.nodes[id]; ok {
		return nil, fmt.Errorf("dfs: datanode %q exists", id)
	}
	dn := &DataNode{ID: id, Rack: rack, Capacity: capacity,
		pool: c.pool, blocks: make(map[BlockID]*replica)}
	dn.alive.Store(true)
	c.nodes[id] = dn
	c.order = append(c.order, id)
	sort.Strings(c.order)
	return dn, nil
}

// DataNodes returns the live node IDs in deterministic order.
func (c *Cluster) DataNodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.order))
	for _, id := range c.order {
		if c.nodes[id].isAlive() {
			out = append(out, id)
		}
	}
	return out
}

// Node returns a datanode by ID.
func (c *Cluster) Node(id string) (*DataNode, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	dn, ok := c.nodes[id]
	return dn, ok
}

// Stat describes a file.
func (c *Cluster) Stat(name string) (FileInfo, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.files[name]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return FileInfo{Name: f.name, Size: f.size, Blocks: len(f.blocks), Complete: f.complete, ModTime: f.modTime}, nil
}

// List returns all complete files whose names start with prefix,
// sorted by name.
func (c *Cluster) List(prefix string) []FileInfo {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []FileInfo
	for name, f := range c.files {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			out = append(out, FileInfo{Name: f.name, Size: f.size, Blocks: len(f.blocks), Complete: f.complete, ModTime: f.modTime})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Delete removes a file and releases its blocks.
func (c *Cluster) Delete(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	for _, b := range f.blocks {
		for _, nodeID := range b.replicas {
			if dn, ok := c.nodes[nodeID]; ok {
				dn.dropBlock(b.id)
			}
		}
	}
	delete(c.files, name)
	return nil
}

// Rename atomically moves a complete file to a new name. It is the
// commit primitive for attempt-scoped outputs: a task writes
// "part-00001.a3" and the committer renames the winner into place.
// The target must not exist; the source must be complete (a rename of
// a file mid-write would detach its writer from the namespace).
func (c *Cluster) Rename(oldName, newName string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	f, ok := c.files[oldName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, oldName)
	}
	if !f.complete {
		return fmt.Errorf("%w: %q", ErrIncomplete, oldName)
	}
	if _, ok := c.files[newName]; ok {
		return fmt.Errorf("%w: %q", ErrExists, newName)
	}
	delete(c.files, oldName)
	f.name = newName
	c.files[newName] = f
	return nil
}

// BlockLocations returns, per block of the file, the IDs of datanodes
// holding a live replica. MapReduce uses it for locality scheduling.
func (c *Cluster) BlockLocations(name string) ([][]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if !f.complete {
		return nil, fmt.Errorf("%w: %q", ErrIncomplete, name)
	}
	out := make([][]string, len(f.blocks))
	for i, b := range f.blocks {
		for _, id := range b.replicas {
			if dn, ok := c.nodes[id]; ok && dn.isAlive() {
				out[i] = append(out[i], id)
			}
		}
	}
	return out, nil
}

// Report summarizes cluster usage.
type Report struct {
	Nodes        int
	LiveNodes    int
	Capacity     units.Bytes
	Used         units.Bytes
	Files        int
	Blocks       int
	LocalReads   uint64
	RemoteReads  uint64
	BytesRead    units.Bytes
	BytesWritten units.Bytes
	ReReplicated uint64
}

// Report returns a usage snapshot.
func (c *Cluster) Report() Report {
	c.mu.RLock()
	defer c.mu.RUnlock()
	r := Report{
		Nodes:        len(c.nodes),
		Files:        len(c.files),
		LocalReads:   c.localReads.Load(),
		RemoteReads:  c.remoteReads.Load(),
		BytesRead:    units.Bytes(c.bytesRead.Load()),
		BytesWritten: units.Bytes(c.bytesWrit.Load()),
		ReReplicated: c.reReplicated.Load(),
	}
	for _, id := range c.order {
		dn := c.nodes[id]
		r.Capacity += dn.Capacity
		r.Used += dn.used()
		if dn.isAlive() {
			r.LiveNodes++
		}
	}
	for _, f := range c.files {
		r.Blocks += len(f.blocks)
	}
	return r
}

package dfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

// buildCluster creates n nodes round-robin across racks with small
// blocks for fast tests.
func buildCluster(n, racks int, blockSize units.Bytes) *Cluster {
	c := NewCluster(Config{BlockSize: blockSize, Replication: 3, Seed: 7})
	for i := 0; i < n; i++ {
		rack := fmt.Sprintf("rack%d", i%racks)
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), rack, units.GiB); err != nil {
			panic(err)
		}
	}
	return c
}

func newTestCluster(t *testing.T, n, racks int, blockSize units.Bytes) *Cluster {
	t.Helper()
	return buildCluster(n, racks, blockSize)
}

func pattern(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i * 31)
	}
	return data
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	data := pattern(10_000) // ~10 blocks
	if err := c.WriteFile("/exp/a", "dn00", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/exp/a", "dn01")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round-trip mismatch")
	}
	info, err := c.Stat("/exp/a")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != units.Bytes(len(data)) || info.Blocks != 10 || !info.Complete {
		t.Fatalf("stat = %+v", info)
	}
}

func TestEmptyFile(t *testing.T) {
	c := newTestCluster(t, 3, 1, 1024)
	if err := c.WriteFile("/empty", "", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/empty", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("read %d bytes from empty file", len(got))
	}
}

func TestReplicationFactor(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(3000)); err != nil {
		t.Fatal(err)
	}
	locs, err := c.BlockLocations("/f")
	if err != nil {
		t.Fatal(err)
	}
	for i, reps := range locs {
		if len(reps) != 3 {
			t.Fatalf("block %d has %d replicas, want 3", i, len(reps))
		}
	}
}

func TestPlacementPolicy(t *testing.T) {
	c := newTestCluster(t, 9, 3, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(1024)); err != nil {
		t.Fatal(err)
	}
	locs, _ := c.BlockLocations("/f")
	reps := locs[0]
	if reps[0] != "dn00" {
		t.Fatalf("first replica on %s, want writer-local dn00", reps[0])
	}
	rack := func(id string) string {
		dn, _ := c.Node(id)
		return dn.Rack
	}
	if rack(reps[1]) == rack(reps[0]) {
		t.Fatalf("second replica on same rack as first (%s)", rack(reps[1]))
	}
	if rack(reps[2]) != rack(reps[1]) {
		t.Fatalf("third replica rack %s, want same as second %s", rack(reps[2]), rack(reps[1]))
	}
	if reps[1] == reps[2] {
		t.Fatal("second and third replica on same node")
	}
}

// Property: for any write size, no block ever has two replicas on one
// node, and every complete file reads back byte-identical.
func TestPlacementInvariantQuick(t *testing.T) {
	f := func(size uint16, hint8 uint8) bool {
		c := buildCluster(8, 3, 512)
		hint := fmt.Sprintf("dn%02d", int(hint8)%8)
		data := pattern(int(size))
		if err := c.WriteFile("/q", hint, data); err != nil {
			return false
		}
		locs, err := c.BlockLocations("/q")
		if err != nil {
			return false
		}
		for _, reps := range locs {
			seen := map[string]bool{}
			for _, r := range reps {
				if seen[r] {
					return false
				}
				seen[r] = true
			}
		}
		got, err := c.ReadFile("/q", "")
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestLocalVsRemoteReads(t *testing.T) {
	c := newTestCluster(t, 6, 2, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(5120)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadFile("/f", "dn00"); err != nil {
		t.Fatal(err)
	}
	rep := c.Report()
	if rep.LocalReads == 0 {
		t.Fatalf("no local reads despite local replicas: %+v", rep)
	}
	if rep.LocalReads != 5 {
		t.Fatalf("local reads = %d, want 5 (all blocks local)", rep.LocalReads)
	}
}

func TestReadAtAcrossBlocks(t *testing.T) {
	c := newTestCluster(t, 4, 2, 100)
	data := pattern(1000)
	if err := c.WriteFile("/f", "", data); err != nil {
		t.Fatal(err)
	}
	r, err := c.Open("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 250)
	if _, err := r.ReadAt(buf, 75); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[75:325]) {
		t.Fatal("ReadAt across block boundary mismatch")
	}
	// Past-EOF read.
	if _, err := r.ReadAt(buf, 2000); err != io.EOF {
		t.Fatalf("err = %v, want EOF", err)
	}
	// Short read at tail.
	n, err := r.ReadAt(buf, 900)
	if n != 100 || err != io.EOF {
		t.Fatalf("tail read n=%d err=%v", n, err)
	}
}

func TestSeekRead(t *testing.T) {
	c := newTestCluster(t, 4, 2, 128)
	data := pattern(500)
	if err := c.WriteFile("/f", "", data); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Open("/f", "")
	if _, err := r.Seek(200, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	rest, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rest, data[200:]) {
		t.Fatal("seek+read mismatch")
	}
}

func TestOpenErrors(t *testing.T) {
	c := newTestCluster(t, 3, 1, 1024)
	if _, err := c.Open("/missing", ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	w, err := c.Create("/partial", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(pattern(10)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/partial", ""); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Create("/partial", ""); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("/partial", ""); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	c := newTestCluster(t, 4, 2, 1024)
	if err := c.WriteFile("/f", "", pattern(4096)); err != nil {
		t.Fatal(err)
	}
	before := c.Report().Used
	if before == 0 {
		t.Fatal("no usage after write")
	}
	if err := c.Delete("/f"); err != nil {
		t.Fatal(err)
	}
	if used := c.Report().Used; used != 0 {
		t.Fatalf("used after delete = %v", used)
	}
	if err := c.Delete("/f"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestList(t *testing.T) {
	c := newTestCluster(t, 3, 1, 1024)
	for _, n := range []string{"/a/1", "/a/2", "/b/1"} {
		if err := c.WriteFile(n, "", pattern(10)); err != nil {
			t.Fatal(err)
		}
	}
	got := c.List("/a/")
	if len(got) != 2 || got[0].Name != "/a/1" || got[1].Name != "/a/2" {
		t.Fatalf("list = %+v", got)
	}
}

func TestNodeFailureReReplication(t *testing.T) {
	c := newTestCluster(t, 8, 2, 1024)
	data := pattern(8 * 1024)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	restored, err := c.KillNode("dn00")
	if err != nil {
		t.Fatal(err)
	}
	if restored == 0 {
		t.Fatal("expected re-replication of blocks held by dn00")
	}
	if ur := c.UnderReplicated(); ur != 0 {
		t.Fatalf("under-replicated blocks after repair: %d", ur)
	}
	got, err := c.ReadFile("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted by node failure")
	}
	if c.Report().ReReplicated == 0 {
		t.Fatal("report should count re-replications")
	}
}

func TestDoubleFailureStillReadable(t *testing.T) {
	c := newTestCluster(t, 9, 3, 1024)
	data := pattern(4 * 1024)
	if err := c.WriteFile("/f", "dn00", data); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KillNode("dn00"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KillNode("dn01"); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadFile("/f", "")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data lost after two failures with replication 3")
	}
}

func TestReviveNode(t *testing.T) {
	c := newTestCluster(t, 4, 2, 1024)
	if err := c.WriteFile("/f", "dn00", pattern(2048)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.KillNode("dn00"); err != nil {
		t.Fatal(err)
	}
	if err := c.ReviveNode("dn00"); err != nil {
		t.Fatal(err)
	}
	dn, _ := c.Node("dn00")
	if !dn.Alive() || dn.Used() != 0 || dn.BlockCount() != 0 {
		t.Fatalf("revived node state: alive=%v used=%v blocks=%d", dn.Alive(), dn.Used(), dn.BlockCount())
	}
	if got := len(c.DataNodes()); got != 4 {
		t.Fatalf("live nodes = %d", got)
	}
}

func TestBalancer(t *testing.T) {
	// Fill 3 nodes to ~50% (replication 1 for controlled skew), then
	// add 3 empty nodes and balance to the cluster mean of 25%.
	c := NewCluster(Config{BlockSize: 1024, Replication: 1, Seed: 3})
	for i := 0; i < 3; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("old%d", i), "rack0", units.MiB); err != nil {
			t.Fatal(err)
		}
	}
	const total = 1536 * 1024 // 1.5 MiB over 3 MiB of old-node capacity
	if err := c.WriteFile("/f", "", pattern(total)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("new%d", i), "rack1", units.MiB); err != nil {
			t.Fatal(err)
		}
	}
	moves := c.Balance(0.05)
	if moves == 0 {
		t.Fatal("balancer made no moves on a skewed cluster")
	}
	for _, id := range c.DataNodes() {
		dn, _ := c.Node(id)
		util := float64(dn.Used()) / float64(dn.Capacity)
		if util < 0.17 || util > 0.33 { // mean 0.25 ± threshold + slack
			t.Fatalf("node %s utilization %f after balance, want ~0.25", id, util)
		}
	}
	data, err := c.ReadFile("/f", "")
	if err != nil || len(data) != total {
		t.Fatalf("file unreadable after balance: %v", err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	c := NewCluster(Config{BlockSize: 1024, Replication: 1, Seed: 1})
	if _, err := c.AddDataNode("tiny", "r", 2048); err != nil {
		t.Fatal(err)
	}
	w, err := c.Create("/big", "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Write(pattern(10 * 1024))
	if err == nil {
		err = w.Close()
	}
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestUnderReplicatedOnSmallCluster(t *testing.T) {
	// 2 nodes, replication 3: blocks are written under-replicated.
	c := NewCluster(Config{BlockSize: 1024, Replication: 3, Seed: 1})
	for i := 0; i < 2; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%d", i), "r", units.MiB); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.WriteFile("/f", "", pattern(1024)); err != nil {
		t.Fatal(err)
	}
	if ur := c.UnderReplicated(); ur != 1 {
		t.Fatalf("under-replicated = %d, want 1", ur)
	}
	// Adding a third node and re-running repair via KillNode of nothing
	// is not available; verify read still works.
	if _, err := c.ReadFile("/f", ""); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadersWriters(t *testing.T) {
	c := newTestCluster(t, 8, 2, 4096)
	const files = 16
	errc := make(chan error, files*2)
	for i := 0; i < files; i++ {
		go func(i int) {
			name := fmt.Sprintf("/par/%02d", i)
			data := pattern(10_000 + i)
			if err := c.WriteFile(name, fmt.Sprintf("dn%02d", i%8), data); err != nil {
				errc <- err
				return
			}
			got, err := c.ReadFile(name, "")
			if err != nil {
				errc <- err
				return
			}
			if !bytes.Equal(got, data) {
				errc <- fmt.Errorf("file %s mismatch", name)
				return
			}
			errc <- nil
		}(i)
	}
	for i := 0; i < files; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Report().Files; got != files {
		t.Fatalf("files = %d, want %d", got, files)
	}
}

package lsdf_test

import (
	"fmt"
	"strings"

	lsdf "repro"
	"repro/internal/mapreduce"
	"repro/internal/rules"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

// Example shows the paper's core lifecycle: store with checksum and
// metadata, tag, and query.
func Example() {
	fac, err := lsdf.New(lsdf.Options{})
	if err != nil {
		panic(err)
	}
	defer fac.Close()

	ds, err := fac.Store("zebrafish", "/ddn/itg/img1.raw",
		strings.NewReader("frame bytes"), map[string]string{"well": "A1"}, "raw")
	if err != nil {
		panic(err)
	}
	fmt.Println("registered:", ds.Project, ds.Path, ds.Size)

	hits := fac.Query(lsdf.Query{Project: "zebrafish", Tags: []string{"raw"}})
	fmt.Println("query hits:", len(hits))
	// Output:
	// registered: zebrafish /ddn/itg/img1.raw 11B
	// query hits: 1
}

// ExampleFacility_Tag shows tag-triggered workflow execution with
// provenance (slide 12).
func ExampleFacility_Tag() {
	fac, err := lsdf.New(lsdf.Options{})
	if err != nil {
		panic(err)
	}
	defer fac.Close()

	wf := workflow.New("measure")
	wf.MustAddNode("stat", workflow.ActorFunc(
		func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
			info, err := ctx.Layer.Stat(in["dataset.path"].(string))
			if err != nil {
				return nil, err
			}
			return workflow.Values{"bytes": fmt.Sprint(int64(info.Size))}, nil
		}))
	fac.AddTrigger(workflow.Trigger{Tag: "measure", Workflow: wf})

	if _, err := fac.Store("demo", "/ddn/run.dat", strings.NewReader("12345"), nil); err != nil {
		panic(err)
	}
	if err := fac.Tag("/ddn/run.dat", "measure"); err != nil {
		panic(err)
	}
	ds := fac.Query(lsdf.Query{Tags: []string{"processed:measure"}})[0]
	fmt.Println("tool:", ds.Processings[0].Tool)
	fmt.Println("bytes:", ds.Processings[0].Results["bytes"])
	// Output:
	// tool: workflow:measure
	// bytes: 5
}

// ExampleFacility_AddRule shows iRODS-style policy automation
// (slide 14): replicate every object of a project on creation.
func ExampleFacility_AddRule() {
	fac, err := lsdf.New(lsdf.Options{})
	if err != nil {
		panic(err)
	}
	defer fac.Close()

	fac.AddRule(rules.Rule{
		Name:      "archive-katrin",
		Event:     rules.OnCreate,
		Condition: rules.ProjectIs("katrin"),
		Actions:   []rules.Action{rules.Replicate("/archive")},
	})
	if _, err := fac.Store("katrin", "/ibm/run1.evt", strings.NewReader("events"), nil); err != nil {
		panic(err)
	}
	info, err := fac.Layer().Stat("/archive/ibm/run1.evt")
	if err != nil {
		panic(err)
	}
	fmt.Println("replica:", info.Path, info.Size)
	// Output:
	// replica: /archive/ibm/run1.evt 6B
}

// ExampleFacility_RunJob shows MapReduce on the analysis cluster
// (slide 11): wordcount over a file stored in the Hadoop filesystem.
func ExampleFacility_RunJob() {
	fac, err := lsdf.New(lsdf.Options{DFSBlockSize: 256})
	if err != nil {
		panic(err)
	}
	defer fac.Close()

	corpus := strings.Repeat("embryo fish\n", 100)
	if err := fac.Cluster().WriteFile("/corpus", "", []byte(corpus)); err != nil {
		panic(err)
	}
	res, err := fac.RunJob(mapreduce.Config{
		Inputs: []string{"/corpus"}, OutputDir: "/out",
		Mapper: mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
			for _, w := range strings.Fields(string(v)) {
				emit(w, []byte("1"))
			}
			return nil
		}),
		Reducer:  workloads.SumReducer,
		Locality: true,
	})
	if err != nil {
		panic(err)
	}
	out, err := mapreduce.ReadTextOutput(fac.Cluster(), res.OutputFiles)
	if err != nil {
		panic(err)
	}
	fmt.Println("embryo:", out["embryo"][0])
	fmt.Println("fish:", out["fish"][0])
	// Output:
	// embryo: 100
	// fish: 100
}

// Ablation benchmarks: each isolates one design choice the paper's
// stack depends on and measures the system with the mechanism on and
// off (or across its settings), so the benefit each mechanism buys is
// visible in `go test -bench=Ablation`.
package lsdf_test

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dfs"
	"repro/internal/hsm"
	"repro/internal/mapreduce"
	"repro/internal/sim"
	"repro/internal/storage"
	"repro/internal/tape"
	"repro/internal/units"
	"repro/internal/workloads"
)

func ablationCluster(b *testing.B, nodes int, blockSize units.Bytes, replication int) *dfs.Cluster {
	b.Helper()
	c := dfs.NewCluster(dfs.Config{BlockSize: blockSize, Replication: replication, Seed: 17})
	for i := 0; i < nodes; i++ {
		if _, err := c.AddDataNode(fmt.Sprintf("dn%02d", i), fmt.Sprintf("r%d", i%3), 4*units.GiB); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

var ablationMapper = mapreduce.MapperFunc(func(_ string, v []byte, emit mapreduce.Emit) error {
	for _, w := range strings.Fields(string(v)) {
		emit(w, []byte("1"))
	}
	return nil
})

func ablationCorpus() []byte {
	var sb strings.Builder
	for i := 0; i < 20_000; i++ {
		fmt.Fprintf(&sb, "fish embryo plate%03d well%02d segmentation result\n", i%128, i%96)
	}
	return []byte(sb.String())
}

// BenchmarkAblationCombiner measures the shuffle with and without the
// map-side combiner. The metric is shuffled bytes per job: combiners
// exist to shrink exactly that.
func BenchmarkAblationCombiner(b *testing.B) {
	data := ablationCorpus()
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run("combiner="+name, func(b *testing.B) {
			var shuffle int64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := ablationCluster(b, 6, 64*units.KiB, 3)
				if err := c.WriteFile("/a/corpus", "", data); err != nil {
					b.Fatal(err)
				}
				cfg := mapreduce.Config{
					Inputs: []string{"/a/corpus"}, OutputDir: "/a/out",
					Mapper: ablationMapper, Reducer: workloads.SumReducer,
					NumReducers: 4, Locality: true,
				}
				if on {
					cfg.Combiner = workloads.SumReducer
				}
				b.StartTimer()
				res, err := mapreduce.Run(c, cfg)
				if err != nil {
					b.Fatal(err)
				}
				shuffle = res.Counters.ShuffleBytes
			}
			b.ReportMetric(float64(shuffle), "shuffle-bytes/job")
		})
	}
}

// BenchmarkAblationLocality measures remote block reads with locality
// scheduling on and off — rack-aware placement only pays off if the
// scheduler uses it.
func BenchmarkAblationLocality(b *testing.B) {
	data := ablationCorpus()
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run("locality="+name, func(b *testing.B) {
			var remote uint64
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := ablationCluster(b, 6, 64*units.KiB, 3)
				if err := c.WriteFile("/a/corpus", "", data); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if _, err := mapreduce.Run(c, mapreduce.Config{
					Inputs: []string{"/a/corpus"}, OutputDir: "/a/out",
					Mapper: ablationMapper, Reducer: workloads.SumReducer,
					Combiner: workloads.SumReducer, Locality: on, SlotsPerNode: 1,
				}); err != nil {
					b.Fatal(err)
				}
				remote = c.Report().RemoteReads
			}
			b.ReportMetric(float64(remote), "remote-block-reads")
		})
	}
}

// BenchmarkAblationSpeculation measures job wall time with one
// pathologically slow node, speculation off versus on.
func BenchmarkAblationSpeculation(b *testing.B) {
	var lines []string
	for i := 0; i < 30; i++ {
		lines = append(lines, fmt.Sprintf("record%02d payload", i))
	}
	data := []byte(strings.Join(lines, "\n") + "\n")
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run("speculation="+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c := ablationCluster(b, 4, 64, 3)
				if err := c.WriteFile("/a/lines", "", data); err != nil {
					b.Fatal(err)
				}
				var slow int64
				b.StartTimer()
				if _, err := mapreduce.Run(c, mapreduce.Config{
					Inputs: []string{"/a/lines"}, OutputDir: "/a/out",
					Mapper: ablationMapper, Reducer: workloads.SumReducer,
					SlotsPerNode: 1, Speculative: on,
					StragglerFactor: 1.5, MonitorInterval: 2 * time.Millisecond,
					TaskDelay: func(node string, task int) time.Duration {
						if node == "dn00" && atomic.AddInt64(&slow, 1) < 4 {
							return 150 * time.Millisecond
						}
						return time.Millisecond
					},
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationReplication measures write cost at replication
// factors 1-3: durability is paid in write bandwidth.
func BenchmarkAblationReplication(b *testing.B) {
	payload := make([]byte, 2*units.MiB)
	for _, r := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replication=%d", r), func(b *testing.B) {
			c := ablationCluster(b, 9, 256*units.KiB, r)
			b.SetBytes(int64(len(payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := c.WriteFile(fmt.Sprintf("/a/%06d", i), "dn00", payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTapeMountCache measures the tape library under a
// cartridge-friendly access run versus a worst-case alternating run:
// the idle-drive mount cache is the difference.
func BenchmarkAblationTapeMountCache(b *testing.B) {
	for _, pattern := range []string{"sequential", "alternating"} {
		b.Run("access="+pattern, func(b *testing.B) {
			var mounts uint64
			var virtual time.Duration
			for i := 0; i < b.N; i++ {
				eng := sim.New(1)
				lb := tape.New(eng, tape.Config{
					Drives: 1, MountTime: 90 * time.Second, UnmountTime: 60 * time.Second,
					AvgSeek: 50 * time.Second, StreamRate: units.Rate(140 * units.MB),
				})
				lb.AddCartridge("a", units.PB)
				lb.AddCartridge("b", units.PB)
				for j := 0; j < 20; j++ {
					cart := "a"
					if pattern == "alternating" && j%2 == 1 {
						cart = "b"
					}
					lb.Read(cart, units.GB, func(error) {})
				}
				eng.Run()
				mounts = lb.Stats().Mounts
				virtual = eng.Now()
			}
			b.ReportMetric(float64(mounts), "mounts")
			b.ReportMetric(virtual.Seconds(), "virtual-sec")
		})
	}
}

// BenchmarkAblationHSMWatermarks measures migration volume across
// watermark pairs: aggressive watermarks trade tape traffic for disk
// headroom.
func BenchmarkAblationHSMWatermarks(b *testing.B) {
	cases := []struct {
		name      string
		high, low float64
	}{
		{"tight-95-90", 0.95, 0.90},
		{"default-85-70", 0.85, 0.70},
		{"aggressive-70-40", 0.70, 0.40},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			var migrated units.Bytes
			for i := 0; i < b.N; i++ {
				eng := sim.New(1)
				disk := storage.NewArray(eng, "d", 100*units.GB, units.Rate(5*units.GB))
				if _, err := disk.CreateVolume("v", 0); err != nil {
					b.Fatal(err)
				}
				lib := tape.New(eng, tape.DefaultConfig())
				pol := hsm.DefaultPolicy()
				pol.HighWatermark = tc.high
				pol.LowWatermark = tc.low
				pol.MinAge = 0
				m, err := hsm.New(eng, disk, "v", lib, pol)
				if err != nil {
					b.Fatal(err)
				}
				for f := 0; f < 96; f++ {
					if err := m.Store(fmt.Sprintf("f%03d", f), units.GB); err != nil {
						b.Fatal(err)
					}
				}
				eng.RunUntil(48 * time.Hour)
				migrated = m.Stats().MigratedBytes
			}
			b.ReportMetric(float64(migrated)/1e9, "migrated-GB")
		})
	}
}

// DNA sequencing (slide 13): a synthetic genome is sampled into
// error-bearing short reads stored on the Hadoop filesystem; k-mer
// counting and coverage profiling run as real MapReduce jobs on the
// analysis cluster — the 2011 Hadoop-genomics pattern.
package main

import (
	"fmt"
	"log"
	"sort"
	"strconv"

	lsdf "repro"
	"repro/internal/mapreduce"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	fac, err := lsdf.New(lsdf.Options{DFSNodes: 8, DFSBlockSize: 64 * units.KiB})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	genome := workloads.GenerateGenome(100_000, 2011)
	reads := workloads.GenerateReads(genome, workloads.ReadsConfig{
		ReadLen: 100, Coverage: 15, ErrorRate: 0.01, Seed: 7,
	})
	if err := fac.Cluster().WriteFile("/dna/reads", "", reads); err != nil {
		log.Fatal(err)
	}
	nReads := 15 * len(genome) / 100
	fmt.Printf("genome: %d bp; reads: %d x 100 bp (15x coverage, 1%% error)\n",
		len(genome), nReads)

	// Job 1: k-mer spectrum.
	res, err := fac.RunJob(mapreduce.Config{
		Name:   "kmer-spectrum",
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/kmers",
		Mapper: workloads.KMerMapper(21), Reducer: workloads.SumReducer,
		Combiner: workloads.SumReducer, NumReducers: 4, Locality: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	out, err := mapreduce.ReadTextOutput(fac.Cluster(), res.OutputFiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-mer job: %d map tasks, %d distinct 21-mers, %v wall\n",
		res.Counters.MapTasks, res.Counters.ReduceGroups, res.Duration.Round(1e6))

	// Error k-mers appear once; genomic k-mers ~15 times. Show the
	// spectrum's two modes.
	hist := map[int]int{}
	for _, vals := range out {
		n, _ := strconv.Atoi(vals[0])
		hist[n]++
	}
	counts := make([]int, 0, len(hist))
	for c := range hist {
		counts = append(counts, c)
	}
	sort.Ints(counts)
	fmt.Println("k-mer multiplicity histogram (count: how many k-mers):")
	for _, c := range counts {
		if c <= 3 || hist[c] > 50 {
			fmt.Printf("  %3dx: %d\n", c, hist[c])
		}
	}

	// Job 2: coverage profile, on the memory-bounded shuffle — a
	// 32 KiB per-task budget spills sorted runs to the DFS and the
	// streaming reducer folds counts straight off the merge.
	cres, err := fac.RunJob(mapreduce.Config{
		Name:   "coverage",
		Inputs: []string{"/dna/reads"}, OutputDir: "/dna/cov",
		Mapper: workloads.CoverageMapper(10_000), StreamReducer: workloads.StreamSumReducer,
		Combiner: workloads.SumReducer, Locality: true,
		ShuffleMemory: 32 * units.KiB,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage job spilled %d sorted runs (%d bytes) and merged %d streams\n",
		cres.Counters.SpillRuns, cres.Counters.SpillBytes, cres.Counters.MergeStreams)
	cov, err := mapreduce.ReadTextOutput(fac.Cluster(), cres.OutputFiles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("coverage per 10 kb bin (want ~15x everywhere):")
	bins := make([]string, 0, len(cov))
	for bin := range cov {
		bins = append(bins, bin)
	}
	sort.Strings(bins)
	for _, bin := range bins {
		n, _ := strconv.Atoi(cov[bin][0])
		fmt.Printf("  bin %s: %.1fx\n", bin, float64(n)/10_000)
	}
	rep := fac.ClusterReport()
	fmt.Printf("cluster after jobs: %d files, %s stored, %d local / %d remote block reads\n",
		rep.Files, rep.Used, rep.LocalReads, rep.RemoteReads)
}

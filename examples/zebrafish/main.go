// Zebrafish: the paper's flagship workload (slides 5 and 12). A
// high-throughput-microscopy campaign streams through the ingest
// pipeline; a policy rule archives every raw frame; tagging a plate
// in the DataBrowser triggers the segmentation workflow; results and
// provenance land back in the metadata DB.
package main

import (
	"context"
	"fmt"
	"log"

	lsdf "repro"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workflow"
	"repro/internal/workloads"
)

func main() {
	fac, err := lsdf.New(lsdf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	// Policy: every raw zebrafish frame is replicated to the archive
	// mount on creation (the iRODS-style rule of slide 14).
	fac.AddRule(rules.Rule{
		Name:      "archive-raw-frames",
		Event:     rules.OnCreate,
		Condition: rules.ProjectIs("zebrafish"),
		Actions:   []rules.Action{rules.Replicate("/archive")},
	})

	// Workflow: read a frame, "segment" it, write the result object.
	wf := workflow.New("segmentation")
	wf.MustAddNode("segment", workflow.ActorFunc(
		func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
			src := in["dataset.path"].(string)
			r, err := ctx.Layer.Open(src)
			if err != nil {
				return nil, err
			}
			defer r.Close()
			// Count bright voxels as a stand-in for cell segmentation.
			buf := make([]byte, 64*1024)
			bright := 0
			for {
				n, err := r.Read(buf)
				for _, b := range buf[:n] {
					if b > 200 {
						bright++
					}
				}
				if err != nil {
					break
				}
			}
			out := src + ".cells"
			w, err := ctx.Layer.Create(out)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "bright_voxels=%d", bright)
			w.Close()
			return workflow.Values{
				"output.path": out,
				"cells":       fmt.Sprint(bright / 1000),
			}, nil
		}))
	fac.AddTrigger(workflow.Trigger{Tag: "segment", Workflow: wf})

	// One plate of the campaign: 96 wells x 24 images x 2 channels at
	// a laptop-friendly frame size (the paper's frames are 4 MB).
	cfg := workloads.DefaultMicroscopy()
	cfg.Plates = 1
	cfg.WellsPerPlate = 12
	cfg.ImagesPerFish = 6
	cfg.ImageSize = 64 * units.KiB
	stats, err := fac.Ingest(context.Background(), workloads.NewMicroscopy(cfg), 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames, %s at %s\n",
		stats.Objects, stats.Bytes.SI(), stats.Throughput())

	archived := fac.Query(lsdf.Query{Tags: []string{"replicated"}})
	fmt.Printf("rule engine archived %d frames to /archive\n", len(archived))

	// An analyst tags one well's frames for segmentation.
	wellFrames := fac.Query(lsdf.Query{
		Project: "zebrafish",
		Basic:   map[string]string{"well": "03"},
	})
	for _, ds := range wellFrames {
		if err := fac.Tag(ds.Path, "segment"); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("tagged %d frames of well 03 for segmentation\n", len(wellFrames))

	done := fac.Query(lsdf.Query{Tags: []string{"processed:segmentation"}})
	fmt.Printf("workflow processed %d frames; example provenance:\n", len(done))
	p := done[0].Processings[0]
	fmt.Printf("  %s: tool=%s cells=%s output=%v\n",
		done[0].ID, p.Tool, p.Results["cells"], p.Outputs)
}

// Quickstart: assemble a facility, store experiment data with
// checksums and metadata, browse it, trigger a workflow by tagging,
// and read back the provenance — the paper's data lifecycle in forty
// lines of client code.
package main

import (
	"fmt"
	"log"
	"strings"

	lsdf "repro"
	"repro/internal/workflow"
)

func main() {
	fac, err := lsdf.New(lsdf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	// A workflow that measures any dataset it is pointed at.
	wf := workflow.New("measure")
	wf.MustAddNode("stat", workflow.ActorFunc(
		func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
			info, err := ctx.Layer.Stat(in["dataset.path"].(string))
			if err != nil {
				return nil, err
			}
			return workflow.Values{"bytes": fmt.Sprint(int64(info.Size))}, nil
		}))
	fac.AddTrigger(workflow.Trigger{Tag: "measure", Workflow: wf})

	// Store two objects into the DDN mount.
	for i, content := range []string{"first acquisition", "second acquisition"} {
		path := fmt.Sprintf("/ddn/demo/run%d.dat", i)
		ds, err := fac.Store("demo", path, strings.NewReader(content),
			map[string]string{"run": fmt.Sprint(i)}, "raw")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("stored %-18s as %s (sha256 %s...)\n", path, ds.ID, ds.Checksum[:12])
	}

	// Browse what the facility holds.
	entries, err := fac.Browser().List("/ddn/demo")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		fmt.Printf("browse: %s %s tags=%v\n", e.Path, e.Size, e.Tags)
	}

	// Tagging triggers the workflow; provenance lands on the dataset.
	if err := fac.Tag("/ddn/demo/run0.dat", "measure"); err != nil {
		log.Fatal(err)
	}
	for _, ds := range fac.Query(lsdf.Query{Tags: []string{"processed:measure"}}) {
		p := ds.Processings[0]
		fmt.Printf("provenance on %s: tool=%s results=%v\n", ds.ID, p.Tool, p.Results)
	}
}

// Batched ingest + async events: store 100 objects through the
// batched registration path (one metadata shard-lock round per
// shard), let the async event bus trigger a segmentation workflow on
// every one, and use Flush as the delivery barrier — the
// high-throughput counterpart to examples/quickstart.
package main

import (
	"fmt"
	"log"
	"strings"

	lsdf "repro"
	"repro/internal/ingest"
	"repro/internal/workflow"
)

func main() {
	fac, err := lsdf.New(lsdf.Options{AsyncEvents: true, MetadataShards: 8})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	wf := workflow.New("seg")
	wf.MustAddNode("count", workflow.ActorFunc(
		func(ctx *workflow.Context, in workflow.Values) (workflow.Values, error) {
			return workflow.Values{"cells": "42"}, nil
		}))
	fac.AddTrigger(workflow.Trigger{Tag: "analyze", Workflow: wf})

	objs := make([]ingest.Object, 100)
	for i := range objs {
		objs[i] = ingest.Object{
			Project: "zebrafish",
			Path:    fmt.Sprintf("/ddn/batch/%03d.raw", i),
			Data:    strings.NewReader(strings.Repeat("x", i+1)),
			Tags:    []string{"raw", "analyze"},
		}
	}
	for _, r := range fac.StoreBatch(objs) {
		if r.Err != nil {
			log.Fatal(r.Err)
		}
	}

	// Tagging returned before the workflows ran; Flush is the barrier.
	before := len(fac.Query(lsdf.Query{Tags: []string{"processed:seg"}}))
	fac.Flush()
	after := len(fac.Query(lsdf.Query{Tags: []string{"processed:seg"}}))
	fmt.Printf("processed before flush: %d, after flush: %d\n", before, after)

	ds, _ := fac.Metadata().ByPath("/ddn/batch/050.raw")
	fmt.Printf("sample %s tags=%v provenance: tool=%s cells=%s\n",
		ds.ID, ds.Tags, ds.Processings[0].Tool, ds.Processings[0].Results["cells"])
}

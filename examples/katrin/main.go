// KATRIN (slide 14): the neutrino-mass experiment is one of the
// communities onboarding in 2011. Spectrometer runs stream into the
// facility through the ingest pipeline; a rule archives every run to
// the object store; a chained MapReduce pipeline builds the detector
// pixel histogram and the energy spectrum near the tritium endpoint.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"strings"

	lsdf "repro"
	"repro/internal/ingest"
	"repro/internal/mapreduce"
	"repro/internal/rules"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	fac, err := lsdf.New(lsdf.Options{DFSNodes: 8, DFSBlockSize: 32 * units.KiB})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	// Archival-quality policy: every KATRIN run is replicated on create.
	fac.AddRule(rules.Rule{
		Name:      "archive-katrin",
		Event:     rules.OnCreate,
		Condition: rules.ProjectIs("katrin"),
		Actions:   []rules.Action{rules.Replicate("/archive")},
	})

	// Ingest five runs of 20k events each.
	const runs, eventsPerRun = 5, 20_000
	objs := make([]*ingest.Object, runs)
	for r := range objs {
		objs[r] = &ingest.Object{
			Project: "katrin",
			Path:    fmt.Sprintf("/ibm/katrin/run%03d.evt", r),
			Data:    bytes.NewReader(workloads.KatrinRun(eventsPerRun, int64(r))),
			Basic:   map[string]string{"run": fmt.Sprint(r), "detector": "fpd"},
			Tags:    []string{"raw", "katrin"},
		}
	}
	stats, err := fac.Ingest(context.Background(), &ingest.SliceProducer{Objects: objs}, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d runs (%s) at %s\n", stats.Objects, stats.Bytes.SI(), stats.Throughput())
	fmt.Printf("archived copies: %d\n", len(fac.Query(lsdf.Query{Tags: []string{"replicated"}})))

	// Stage the event data onto the analysis cluster and run the
	// histogram jobs.
	var all bytes.Buffer
	for r := 0; r < runs; r++ {
		rd, err := fac.Open(fmt.Sprintf("/ibm/katrin/run%03d.evt", r))
		if err != nil {
			log.Fatal(err)
		}
		if _, err := all.ReadFrom(rd); err != nil {
			log.Fatal(err)
		}
		rd.Close()
	}
	if err := fac.Cluster().WriteFile("/katrin/events", "", all.Bytes()); err != nil {
		log.Fatal(err)
	}

	pixel, err := fac.RunJob(mapreduce.Config{
		Name:   "pixel-histogram",
		Inputs: []string{"/katrin/events"}, OutputDir: "/katrin/pixels",
		Mapper: workloads.PixelHistogramMapper, Reducer: workloads.SumReducer,
		Combiner: workloads.SumReducer, NumReducers: 4, Locality: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	spec, err := fac.RunJob(mapreduce.Config{
		Name:   "energy-spectrum",
		Inputs: []string{"/katrin/events"}, OutputDir: "/katrin/spectrum",
		Mapper: workloads.EnergyBandMapper, Reducer: workloads.SumReducer,
		Combiner: workloads.SumReducer, Locality: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	pixels, _ := mapreduce.ReadTextOutput(fac.Cluster(), pixel.OutputFiles)
	fmt.Printf("pixel histogram: %d of 148 detector pixels hit (%v wall)\n",
		len(pixels), pixel.Duration.Round(1e6))

	bands, _ := mapreduce.ReadTextOutput(fac.Cluster(), spec.OutputFiles)
	keys := make([]string, 0, len(bands))
	for k := range bands {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("energy spectrum near the tritium endpoint (100 eV bands):")
	for _, k := range keys {
		n, _ := strconv.Atoi(bands[k][0])
		bar := n * 40 / (runs * eventsPerRun / len(bands) * 2)
		if bar < 0 {
			bar = 0
		}
		fmt.Printf("  %s eV  %6d  %s\n", k[len("band-"):], n, strings.Repeat("#", bar))
	}
}

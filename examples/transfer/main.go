// Transfer study (slide 11): "15 days to transfer 1 PB over an ideal
// 10 Gb/s link" is why LSDF brings computing to the data. The fluid
// network model reruns the arithmetic under efficiency and
// contention, including the Heidelberg path of the slide-7 topology.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/facility"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/units"
)

func main() {
	fmt.Println("== 1 PB over a dedicated 10 GbE link ==")
	for _, r := range facility.TransferStudy([]facility.TransferCase{
		{Label: "ideal, 100% efficiency", Bytes: units.PB, Efficiency: 1.0},
		{Label: "90% efficiency", Bytes: units.PB, Efficiency: 0.90},
		{Label: "62% efficiency (paper's 15 days)", Bytes: units.PB, Efficiency: 0.62},
		{Label: "shared with 1 other flow", Bytes: units.PB, Efficiency: 1.0, Parallel: 2},
		{Label: "shared with 3 other flows", Bytes: units.PB, Efficiency: 1.0, Parallel: 4},
	}, units.Gbps(10)) {
		fmt.Printf("  %-34s %6.1f days\n", r.Label, r.Days)
	}

	m := facility.LSDFCluster()
	fmt.Printf("  %-34s %6.1f days\n", "process in place, 60-node cluster",
		m.TimeFor(units.PB, 60).Hours()/24)

	// The full slide-7 topology: DAQ ingest and a Heidelberg bulk pull
	// compete for the backbone; max-min fair sharing decides.
	fmt.Println("\n== contention on the slide-7 topology ==")
	s, err := facility.NewScenario(facility.ScenarioConfig{})
	if err != nil {
		log.Fatal(err)
	}
	var daqDone, hdDone time.Duration
	_, err = s.Net.StartFlow(netsim.FlowSpec{
		Src: "daq", Dst: "ddn", Bytes: 10 * units.TB, Efficiency: 0.9,
		OnComplete: func(f *netsim.Flow) { daqDone = f.Elapsed() },
	})
	if err != nil {
		log.Fatal(err)
	}
	_, err = s.Net.StartFlow(netsim.FlowSpec{
		Src: "ddn", Dst: "uni-heidelberg", Bytes: 10 * units.TB, Efficiency: 0.9,
		OnComplete: func(f *netsim.Flow) { hdDone = f.Elapsed() },
	})
	if err != nil {
		log.Fatal(err)
	}
	s.Eng.Run()
	fmt.Printf("  10 TB DAQ->DDN:            %v\n", daqDone.Round(time.Second))
	fmt.Printf("  10 TB DDN->Heidelberg:     %v\n", hdDone.Round(time.Second))
	fmt.Println("  (disjoint paths through the redundant routers: no slowdown)")

	// A second engine shows two flows forced over one link.
	eng := sim.New(1)
	net := netsim.New(eng)
	net.AddDuplexLink("a", "b", units.Gbps(10), time.Millisecond)
	var t1, t2 time.Duration
	for i, out := range []*time.Duration{&t1, &t2} {
		_ = i
		out := out
		if _, err := net.StartFlow(netsim.FlowSpec{
			Src: "a", Dst: "b", Bytes: 10 * units.TB,
			OnComplete: func(f *netsim.Flow) { *out = f.Elapsed() },
		}); err != nil {
			log.Fatal(err)
		}
	}
	eng.Run()
	fmt.Printf("  same 10 TB x2 on ONE link: %v each (fair-share halves the rate)\n",
		t1.Round(time.Second))
}

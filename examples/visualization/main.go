// 3D biomedical visualization (slide 13): a voxel volume stored
// slab-per-block on the DFS is reduced to a maximum-intensity
// projection by a real MapReduce job, and the measured throughput is
// projected to the paper's "1 TB in 20 minutes on 60 nodes".
package main

import (
	"fmt"
	"log"
	"time"

	lsdf "repro"
	"repro/internal/facility"
	"repro/internal/mapreduce"
	"repro/internal/units"
	"repro/internal/workloads"
)

func main() {
	cfg := workloads.VolumeConfig{Width: 512, Height: 256, Depth: 128, Seed: 13}
	fac, err := lsdf.New(lsdf.Options{DFSNodes: 8, DFSBlockSize: cfg.SlabBytes()})
	if err != nil {
		log.Fatal(err)
	}
	defer fac.Close()

	// Store the volume slab by slab: one DFS block per z-slab, so each
	// map task projects exactly one slab, data-locally.
	w, err := fac.Cluster().Create("/vol/raw", "")
	if err != nil {
		log.Fatal(err)
	}
	for z := 0; z < cfg.Depth; z++ {
		if _, err := w.Write(cfg.GenerateSlab(z)); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("volume: %dx%dx%d voxels = %s in %d slabs\n",
		cfg.Width, cfg.Height, cfg.Depth, cfg.TotalBytes().SI(), cfg.Depth)

	start := time.Now()
	res, err := fac.RunJob(mapreduce.Config{
		Name:   "mip",
		Inputs: []string{"/vol/raw"}, OutputDir: "/vol/mip",
		Mapper: workloads.MIPMapper(cfg), Reducer: workloads.MIPReducer,
		Format: mapreduce.WholeSplitInput, Locality: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	rate := units.Rate(float64(cfg.TotalBytes()) / elapsed.Seconds())
	fmt.Printf("MIP: %d slab tasks -> %d projection rows in %v (%s)\n",
		res.Counters.MapTasks, res.Counters.OutputRecords,
		elapsed.Round(time.Millisecond), rate)
	local := res.Counters.LocalTasks
	total := local + res.Counters.RemoteTasks
	fmt.Printf("data-local tasks: %d/%d\n", local, total)

	// The paper's claim, through the calibrated cluster model.
	m := facility.LSDFCluster()
	fmt.Printf("paper-calibrated model: 1 TB on 60 nodes = %.1f min (paper: ~20 min)\n",
		m.TimeFor(units.TB, 60).Minutes())
	for _, n := range []int{1, 8, 16, 32, 60} {
		fmt.Printf("  %2d nodes: %6.1f min/TB (speedup %.1fx)\n",
			n, m.TimeFor(units.TB, n).Minutes(), m.Speedup(n))
	}
}

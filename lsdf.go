// Package lsdf is a from-scratch Go reproduction of "The Large Scale
// Data Facility: Data Intensive Computing for Scientific Experiments"
// (García et al., KIT, PDSEC/IPDPS 2011).
//
// It provides the paper's integrated data lifecycle as a library:
//
//	fac, _ := lsdf.New(lsdf.Options{})
//	defer fac.Close()
//	ds, _ := fac.Store("zebrafish", "/ddn/itg/img1.raw", frame, basic, "raw")
//	fac.Tag(ds.Path, "analyze")            // triggers workflows
//	out := fac.Query(lsdf.Query{Tags: []string{"processed:seg"}})
//
// The metadata repository behind the handle is sharded; bulk ingest
// can batch registrations (Facility.StoreBatch, IngestWith), and
// Options.AsyncEvents moves workflow/rule triggering onto a
// background event bus with Facility.Flush as the delivery barrier.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record of every
// reproduced figure.
package lsdf

import (
	"repro/internal/core"
	"repro/internal/metadata"
	"repro/internal/units"
)

// Facility is the top-level handle; see internal/core for methods.
type Facility = core.Facility

// Options configures New.
type Options = core.Options

// Query selects datasets from the metadata DB.
type Query = metadata.Query

// Dataset is a metadata record.
type Dataset = metadata.Dataset

// Bytes is the byte-count type used across the API.
type Bytes = units.Bytes

// Size constants for convenience.
const (
	KiB = units.KiB
	MiB = units.MiB
	GiB = units.GiB
	TiB = units.TiB
	MB  = units.MB
	GB  = units.GB
	TB  = units.TB
	PB  = units.PB
)

// New assembles a facility.
func New(opts Options) (*Facility, error) { return core.New(opts) }
